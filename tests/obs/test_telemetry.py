"""Unit tests for the streaming telemetry registry and its sketches.

The mergeability contract is the load-bearing property: merging
per-shard snapshots must reproduce the single-process instruments
exactly (integer bucket counts) or to float-addition identity (sums
merged in a deterministic order).  ``NullRegistry`` mirrors
``NullSpanTracer``: producers keep a reference unconditionally and pay
only an attribute check when telemetry is off.
"""

import json
import math

import pytest

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    NullRegistry,
    find_metrics,
    merge_snapshots,
    metric_key,
    read_telemetry_json,
    validate_snapshot,
    write_telemetry_json,
)


class TestLogHistogram:
    def test_empty(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.sum == 0.0
        with pytest.raises(ValueError):
            hist.quantile(50)

    def test_exact_count_sum_min_max(self):
        hist = LogHistogram()
        values = [0.001, 0.5, 2.0, 37.0, 1e6]
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.min == min(values)
        assert hist.max == max(values)

    def test_zero_values_counted(self):
        hist = LogHistogram()
        hist.observe(0.0)
        hist.observe(1.0)
        assert hist.count == 2
        assert hist.min == 0.0
        assert hist.quantile(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().observe(-1.0)

    def test_quantile_bounded_relative_error(self):
        # Bucket upper bounds over-estimate by at most the growth factor.
        hist = LogHistogram(growth=1.1)
        values = [0.01 * (i + 1) for i in range(1000)]
        for v in values:
            hist.observe(v)
        for q in (10, 50, 90, 99):
            exact = values[max(0, math.ceil(q / 100 * len(values)) - 1)]
            sketch = hist.quantile(q)
            assert exact <= sketch * (1 + 1e-9)
            assert sketch <= exact * 1.1 * (1 + 1e-9)

    def test_quantile_extremes_are_exact(self):
        hist = LogHistogram()
        for v in (3.0, 1.0, 9.0):
            hist.observe(v)
        assert hist.quantile(0) == 1.0
        assert hist.quantile(100) == 9.0

    def test_quantile_out_of_range(self):
        hist = LogHistogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(101)

    def test_single_value(self):
        hist = LogHistogram()
        hist.observe(7.0)
        for q in (0, 50, 100):
            assert hist.quantile(q) == 7.0

    def test_merge_is_exact(self):
        a, b, both = LogHistogram(), LogHistogram(), LogHistogram()
        for i, v in enumerate([0.1, 0.2, 5.0, 80.0, 0.0, 2.5]):
            (a if i % 2 else b).observe(v, window=i)
            both.observe(v, window=i)
        a.merge(b)
        assert a.to_dict() == both.to_dict()

    def test_merge_growth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.1).merge(LogHistogram(growth=1.5))

    def test_roundtrip(self):
        hist = LogHistogram()
        for i, v in enumerate([0.0, 0.3, 12.0]):
            hist.observe(v, window=i)
        clone = LogHistogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.quantile(50) == hist.quantile(50)

    def test_fraction_below(self):
        hist = LogHistogram()
        for v in (0.0, 0.5, 1.0, 10.0):
            hist.observe(v)
        assert hist.fraction_below(100.0) == 1.0
        assert hist.fraction_below(1e-6) == 0.25  # only the zero
        # Conservative: a bucket counts only if its UPPER bound fits.
        assert 0.25 <= hist.fraction_below(0.6) <= 0.75


class TestCounterGauge:
    def test_counter_windows_sum_to_total(self):
        counter = Counter()
        counter.inc(2.0, window=0)
        counter.inc(3.0, window=0)
        counter.inc(1.0, window=4)
        assert counter.total == 6.0
        assert sum(counter.windows.values()) == counter.total

    def test_counter_merge(self):
        a, b = Counter(), Counter()
        a.inc(2.0, window=0)
        b.inc(3.0, window=0)
        b.inc(1.0, window=1)
        a.merge(b)
        assert a.total == 6.0
        assert a.windows == {0: 5.0, 1: 1.0}

    def test_counter_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_last_writer_wins_on_time(self):
        gauge = Gauge()
        gauge.set(5.0, time=2.0)
        gauge.set(3.0, time=1.0)  # stale write, ignored
        assert gauge.value == 5.0
        other = Gauge()
        other.set(9.0, time=1.5)
        gauge.merge(other)  # other is older, loses
        assert gauge.value == 5.0 and gauge.time == 2.0
        fresh = Gauge()
        fresh.set(1.0, time=10.0)
        gauge.merge(fresh)  # fresher, wins
        assert gauge.value == 1.0 and gauge.time == 10.0

    def test_gauge_merge_is_order_free(self):
        a, b = Gauge(), Gauge()
        a.set(5.0, time=2.0)
        b.set(9.0, time=1.5)
        ab, ba = Gauge(), Gauge()
        for g in (a, b):
            ab.merge(g)
        for g in (b, a):
            ba.merge(g)
        assert ab.to_dict() == ba.to_dict()


class TestRegistry:
    def test_labels_key_instruments(self):
        reg = MetricsRegistry()
        reg.inc("hits", 1.0, node="a")
        reg.inc("hits", 2.0, node="b")
        reg.inc("hits", 3.0, node="a")
        assert reg.counter("hits", node="a").total == 4.0
        assert reg.counter("hits", node="b").total == 2.0
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key(
            "m", {"b": 2, "a": 1}
        )

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.inc("m", 1.0)
        with pytest.raises(ValueError):
            reg.observe("m", 1.0)

    def test_simulated_clock_windows(self):
        now = {"t": 0.0}
        reg = MetricsRegistry(clock=lambda: now["t"], window=1.0)
        reg.observe("lat", 0.5)
        now["t"] = 2.7
        reg.observe("lat", 1.5)
        hist = reg.histogram("lat")
        assert set(hist.windows) == {0, 2}

    def test_snapshot_deterministic_order(self):
        reg = MetricsRegistry()
        reg.inc("z", 1.0, node="b")
        reg.inc("a", 1.0)
        reg.inc("z", 1.0, node="a")
        names = [m["name"] for m in reg.snapshot()["metrics"]]
        assert names == sorted(names)

    def test_snapshot_merge_identity(self):
        # The sharded contract: per-cell registries replay the same
        # float additions no matter which worker runs them, so merging
        # cell snapshots in cell order is bit-identical for any layout.
        def load(reg, offset):
            for i in range(10):
                reg.observe("lat", 0.1 * (i + offset), wf="x")
                reg.inc("ops", 1.0, wf="x")

        def cells():
            a, b = MetricsRegistry(), MetricsRegistry()
            load(a, 0)
            load(b, 10)
            return [a.snapshot(), b.snapshot()]

        once = merge_snapshots(cells())
        again = merge_snapshots(cells())
        assert json.dumps(once, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )
        # Against one monolithic registry: counts exact, sums to float
        # tolerance (a single registry adds in a different order).
        whole = MetricsRegistry()
        load(whole, 0)
        load(whole, 10)
        (m_hist, m_ops), (w_hist, w_ops) = (
            sorted(s["metrics"], key=lambda m: m["name"])
            for s in (once, whole.snapshot())
        )
        assert m_hist["count"] == w_hist["count"]
        assert m_hist["buckets"] == w_hist["buckets"]
        assert m_hist["sum"] == pytest.approx(w_hist["sum"], rel=1e-12)
        assert m_ops["total"] == w_ops["total"]

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("m", 1.0)
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot()["metrics"] == []

    def test_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.observe("lat", 0.25, wf="w")
        reg.inc("ops", 2.0)
        path = write_telemetry_json(tmp_path / "t.json", reg)
        snapshot = read_telemetry_json(path)
        assert validate_snapshot(snapshot) == []
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            reg.snapshot(), sort_keys=True
        )

    def test_find_metrics(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1.0, wf="a", node="n0")
        reg.inc("ops", 1.0, wf="b", node="n0")
        snapshot = reg.snapshot()
        assert len(find_metrics(snapshot, "ops")) == 2
        assert len(find_metrics(snapshot, "ops", wf="a")) == 1
        assert find_metrics(snapshot, "missing") == []


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY, NullRegistry)
        NULL_TELEMETRY.inc("m", 1.0, node="x")
        NULL_TELEMETRY.observe("m2", 0.5)
        NULL_TELEMETRY.set_gauge("m3", 1.0)
        assert len(NULL_TELEMETRY) == 0
        assert NULL_TELEMETRY.snapshot()["metrics"] == []

    def test_accessors_return_noop_instruments(self):
        counter = NULL_TELEMETRY.counter("m")
        counter.inc(5.0)
        hist = NULL_TELEMETRY.histogram("h")
        hist.observe(1.0)
        assert len(NULL_TELEMETRY) == 0


class TestValidateSnapshot:
    def test_good_snapshot_passes(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1)
        reg.inc("ops", 1.0)
        assert validate_snapshot(reg.snapshot()) == []

    def test_detects_count_mismatch(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1)
        snapshot = reg.snapshot()
        snapshot["metrics"][0]["count"] += 1
        problems = validate_snapshot(snapshot)
        assert problems and any("count" in p for p in problems)

    def test_detects_duplicate_series(self):
        reg = MetricsRegistry()
        reg.inc("ops", 1.0)
        snapshot = reg.snapshot()
        snapshot["metrics"].append(dict(snapshot["metrics"][0]))
        assert any("duplicate" in p for p in validate_snapshot(snapshot))

    def test_detects_wrong_type(self):
        assert validate_snapshot({"type": "spans"}) != []


class TestQuantileCache:
    """Regression: ``quantile`` caches the sorted bucket keys; the
    cache must be invalidated whenever observe/merge can add a bucket,
    or quantiles silently go stale."""

    def _reference(self, values):
        fresh = LogHistogram()
        for v in values:
            fresh.observe(v)
        return fresh

    def test_observe_new_bucket_invalidates(self):
        hist = LogHistogram()
        for v in (0.5, 2.0):
            hist.observe(v)
        assert hist.quantile(99) == self._reference([0.5, 2.0]).quantile(99)
        # A value far above every existing bucket: with a stale cache
        # the p99 would still come off the 2.0 bucket.
        hist.observe(500.0)
        assert hist.quantile(99) == self._reference(
            [0.5, 2.0, 500.0]
        ).quantile(99)
        assert hist.quantile(99) == 500.0  # clamped to exact max

    def test_observe_existing_bucket_keeps_quantiles_exact(self):
        hist = LogHistogram()
        values = [1.0, 1.0, 1.0]
        for v in values:
            hist.observe(v)
        assert hist.quantile(50) == self._reference(values).quantile(50)
        # Same bucket again: counts change, key set does not; every
        # quantile must still match a cache-free computation.
        for _ in range(97):
            hist.observe(1.0)
            values.append(1.0)
        hist.observe(64.0)
        values.append(64.0)
        for q in (1, 50, 98, 99, 100):
            assert hist.quantile(q) == self._reference(values).quantile(q)

    def test_merge_invalidates(self):
        left = LogHistogram()
        for v in (0.1, 0.2):
            left.observe(v)
        assert left.quantile(100) == 0.2
        right = LogHistogram()
        for v in (30.0, 40.0):
            right.observe(v)
        left.merge(right)
        assert left.quantile(100) == 40.0
        assert left.quantile(50) == self._reference(
            [0.1, 0.2, 30.0, 40.0]
        ).quantile(50)

    def test_interleaved_agreement(self):
        """Any interleaving of observe/quantile/merge agrees with a
        histogram built from scratch at every step."""
        hist = LogHistogram()
        seen = []
        batches = ([0.05, 0.8], [12.0], [0.8, 250.0], [3.3])
        for batch in batches:
            for v in batch:
                hist.observe(v)
                seen.append(v)
            for q in (25, 50, 75, 99):
                assert hist.quantile(q) == self._reference(seen).quantile(q)
        other = LogHistogram()
        for v in (1e4, 2e4):
            other.observe(v)
            seen.append(v)
        hist.merge(other)
        for q in (25, 50, 75, 99, 100):
            assert hist.quantile(q) == self._reference(seen).quantile(q)

    def test_empty_merge_preserves_cache_correctness(self):
        hist = LogHistogram()
        hist.observe(5.0)
        assert hist.quantile(50) == 5.0
        hist.merge(LogHistogram())  # nothing to add
        assert hist.quantile(50) == 5.0

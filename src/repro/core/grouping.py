"""Function grouping and scheduling — the paper's Algorithm 1.

Partitioning a DAG optimally is NP-hard, so FaaSFlow greedily merges
along the critical path: each iteration finds the heaviest edge of the
critical path whose endpoint groups can legally merge — capacity on
some worker, the workflow's in-memory quota, and no declared
resource-contention pair inside the merged group — then re-bin-packs
the merged group onto a worker.  Iteration stops when no edge can
merge.

The merge localizes the edge: the producer's storage type flips from
'DB' to 'MEM' and the edge's data is charged against the quota, which
is how data-heavy edges end up served by FaaStore.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..dag import WorkflowDAG, critical_path
from .state import Placement

__all__ = ["GroupingConfig", "GroupingResult", "group_functions", "GroupingError"]


class GroupingError(ValueError):
    """Grouping cannot produce a legal placement."""


@dataclass
class GroupingConfig:
    """Inputs to Algorithm 1 beyond the DAG itself."""

    workers: list[str]
    node_capacity: dict[str, float]  # containers creatable per worker
    quota: float  # Quota(G): in-memory bytes available (Eq. 2)
    contention_pairs: frozenset[frozenset[str]] = frozenset()
    seed: int = 7
    # Cap on one group's instance count: a group's functions run
    # co-resident and its parallel branches execute concurrently, so
    # groups larger than the node's usable concurrency would serialize
    # on cores.  Node capacity itself is memory-bound (functions in
    # different stages share CPU over time).
    max_group_instances: float = float("inf")
    # Edges lighter than this carry no transmission cost worth saving:
    # merging them gains nothing and only concentrates load, so the
    # greedy loop skips them (e.g. the scheduling-overhead experiments,
    # where inputs are pre-packed and every edge weighs zero).
    min_edge_weight: float = 1e-9

    def __post_init__(self) -> None:
        if not self.workers:
            raise GroupingError("need at least one worker")
        missing = [w for w in self.workers if w not in self.node_capacity]
        if missing:
            raise GroupingError(f"no capacity entry for workers: {missing}")
        if any(c < 0 for c in self.node_capacity.values()):
            raise GroupingError("negative node capacity")
        if self.quota < 0:
            raise GroupingError("negative quota")


@dataclass
class GroupingResult:
    """Output of Algorithm 1."""

    groups: list[set[str]]
    group_worker: list[str]  # worker of each group (parallel list)
    placement: Placement
    storage_type: dict[str, str]  # function -> 'DB' | 'MEM'
    mem_consume: float  # quota bytes charged by localized edges
    iterations: int
    # function -> index into ``groups``; filled by group_functions (or
    # lazily on first lookup for results built by hand in tests).
    _index: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def group_of(self, function: str) -> int:
        index = self._index
        if not index:
            for position, group in enumerate(self.groups):
                for member in group:
                    index[member] = position
        try:
            return index[function]
        except KeyError:
            raise KeyError(function) from None

    @property
    def localized_functions(self) -> list[str]:
        return sorted(
            f for f, t in self.storage_type.items() if t == "MEM"
        )


def _instances(dag: WorkflowDAG, functions: Iterable[str]) -> float:
    """Container instances a set of functions needs (Scale * Map)."""
    return sum(dag.node(f).effective_instances for f in functions)


_LOCAL_COPY_RATE = 4096 * 1024 * 1024  # node-local memory bandwidth


def group_functions(
    dag: WorkflowDAG, config: GroupingConfig
) -> GroupingResult:
    """Run Algorithm 1 and return groups, placement, and storage types."""
    rng = random.Random(config.seed)
    # Work on a copy: localized edges get their weight dropped to the
    # local-transfer estimate so the critical path moves to the next
    # still-remote path (otherwise a single heavy fan-out edge would pin
    # the critical path forever and iteration would stop after one
    # merge).  The caller's DAG weights are left untouched.
    dag = dag.copy()
    names = dag.node_names
    # Incident-edge index over the working copy: a merge only needs to
    # reweight edges touching the merged members, not rescan every edge.
    edges_of: dict[str, list] = {name: [] for name in names}
    for edge in dag.edges:
        edges_of[edge.src].append(edge)
        edges_of[edge.dst].append(edge)
    # Line 1: every function starts as its own group on a random worker.
    groups: dict[int, set[str]] = {i: {name} for i, name in enumerate(names)}
    group_of: dict[str, int] = {name: i for i, name in enumerate(names)}
    worker_of: dict[int, str] = {}
    capacity = dict(config.node_capacity)
    for index, name in enumerate(names):
        needed = dag.node(name).effective_instances
        candidates = [w for w in config.workers if capacity[w] >= needed]
        if not candidates:
            raise GroupingError(
                f"no worker can host {name!r} ({needed} instances)"
            )
        # Random among the roomiest candidates: keeps the paper's random
        # initial assignment while not stranding capacity when the
        # cluster is nearly full.
        roomiest = max(capacity[w] for w in candidates)
        best = [w for w in candidates if capacity[w] >= roomiest - 1e-9]
        chosen = rng.choice(best)
        worker_of[index] = chosen
        capacity[chosen] -= needed
    # Line 2: everything starts on the remote store.
    storage_type = {
        node.name: "DB" for node in dag.nodes if not node.is_virtual
    }
    mem_consume = 0.0
    iterations = 0

    while True:
        iterations += 1
        path = critical_path(dag)
        edges = sorted(path.edges, key=lambda e: e.weight, reverse=True)
        merged = False
        for edge in edges:
            if edge.weight < config.min_edge_weight:
                break  # edges are weight-sorted: nothing left to save
            start_group = group_of[edge.src]
            end_group = group_of[edge.dst]
            if start_group == end_group:
                continue  # line 9: already together
            members = groups[start_group] | groups[end_group]
            needed = _instances(dag, members)
            if needed > config.max_group_instances:
                continue
            # Line 12: the merged group must fit on the roomiest worker
            # (counting the capacity its own parts would give back).
            releasable: dict[str, float] = {}
            for g in (start_group, end_group):
                w = worker_of[g]
                releasable[w] = releasable.get(w, 0.0) + _instances(dag, groups[g])
            if needed > max(
                capacity[w] + releasable.get(w, 0.0) for w in config.workers
            ):
                continue
            # Line 19-20: no contention pair may end up co-located.
            # (Checked before the quota charge so an abort here does not
            # leak quota — the paper's pseudocode charges first.)
            if _has_contention(members, config.contention_pairs):
                continue
            # Lines 13-18: localizing the edge consumes in-memory quota.
            # The charge is the producer's worst-case residency: its
            # output stays in the memory store until every consumer has
            # fetched it, so `output_size * consumers` bytes must fit.
            producer = edge.src
            charged = 0.0
            if (
                not dag.node(producer).is_virtual
                and storage_type.get(producer) == "DB"
            ):
                consumers = len(dag.data_consumers(producer))
                charged = dag.node(producer).output_size * max(1, consumers)
                if mem_consume + charged > config.quota:
                    continue
                mem_consume += charged
                storage_type[producer] = "MEM"
            # Lines 21-23: merge and bin-pack onto a worker.
            for g in (start_group, end_group):
                capacity[worker_of[g]] += _instances(dag, groups[g])
            target = _binpack(config.workers, capacity, needed)
            if target is None:  # pragma: no cover - guarded by line 12
                for g in (start_group, end_group):
                    capacity[worker_of[g]] -= _instances(dag, groups[g])
                if charged:
                    mem_consume -= charged
                    storage_type[producer] = "DB"
                continue
            capacity[target] -= needed
            new_id = max(groups) + 1
            groups[new_id] = members
            worker_of[new_id] = target
            for name in members:
                group_of[name] = new_id
            del groups[start_group], groups[end_group]
            del worker_of[start_group], worker_of[end_group]
            # Intra-group edges now move at memory speed; reflect that
            # in the working weights so the next critical path surfaces
            # the remaining remote edges.  Any edge newly inside the
            # merged group touches a member, so only incident edges need
            # checking (re-weighting one twice is idempotent).
            for name in members:
                for intra in edges_of[name]:
                    if (
                        group_of[intra.src] == new_id
                        and group_of[intra.dst] == new_id
                    ):
                        intra.weight = intra.data_size / _LOCAL_COPY_RATE
            merged = True
            break
        if not merged:
            break

    # Post-pass (paper §3.2): FaaStore inspects successor locations at
    # runtime, so a producer whose consumers all ended up in its own
    # group may use the memory store even if no merge flipped it —
    # provided the quota still covers its residency.
    for name in dag.topological_order():
        node = dag.node(name)
        if node.is_virtual or storage_type.get(name) != "DB":
            continue
        consumers = dag.data_consumers(name)
        if not consumers:
            continue
        if any(group_of[c] != group_of[name] for c in consumers):
            continue
        charge = node.output_size * len(consumers)
        if mem_consume + charge <= config.quota:
            mem_consume += charge
            storage_type[name] = "MEM"

    ordered = sorted(groups)
    final_groups = [groups[g] for g in ordered]
    final_workers = [worker_of[g] for g in ordered]
    assignment = {
        name: worker_of[group_of[name]] for name in names
    }
    placement = Placement(workflow=dag.name, assignment=assignment)
    return GroupingResult(
        groups=final_groups,
        group_worker=final_workers,
        placement=placement,
        storage_type=storage_type,
        mem_consume=mem_consume,
        iterations=iterations,
        _index={
            member: position
            for position, group in enumerate(final_groups)
            for member in group
        },
    )


def _has_contention(
    members: set[str], pairs: frozenset[frozenset[str]]
) -> bool:
    for pair in pairs:
        if pair <= members:
            return True
    return False


def _binpack(
    workers: list[str], capacity: dict[str, float], needed: float
) -> Optional[str]:
    """Worst-fit: the roomiest worker that fits the group.

    The paper's load balancer spreads groups to balance load and
    resources across workers (§5.5), so co-scheduled workflows land on
    different nodes instead of consolidating onto one.
    """
    fitting = [w for w in workers if capacity[w] >= needed]
    if not fitting:
        return None
    return max(fitting, key=lambda w: (capacity[w], w))

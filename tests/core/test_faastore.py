"""Unit tests for the storage policies (RemoteStorePolicy / FaaStorePolicy)."""

import pytest

from repro.core import FaaStorePolicy, RemoteStorePolicy, object_key
from repro.metrics import MetricsCollector

from .conftest import MB, all_on, fanout_dag, linear_dag, round_robin


def drive(env, generator):
    return env.run(until=env.process(generator))


class TestRemoteStorePolicy:
    def test_save_goes_to_remote_store(self, env, cluster):
        metrics = MetricsCollector()
        policy = RemoteStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 1 * MB))
        assert object_key("lin", 1, "f0", 0) in cluster.remote_store
        assert len(metrics.transfers) == 1
        assert not metrics.transfers[0].local
        assert metrics.transfers[0].phase == "put"

    def test_fetch_comes_from_remote_store(self, env, cluster):
        metrics = MetricsCollector()
        policy = RemoteStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 1 * MB))
        drive(
            env,
            policy.fetch_input(node, dag, placement, 1, "f0", "f1", 0, 1 * MB),
        )
        gets = [t for t in metrics.transfers if t.phase == "get"]
        assert len(gets) == 1
        assert gets[0].producer == "f0"
        assert gets[0].consumer == "f1"

    def test_zero_size_is_a_noop(self, env, cluster):
        metrics = MetricsCollector()
        policy = RemoteStorePolicy(cluster, metrics)
        dag = linear_dag(output_size=0)
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 0))
        assert metrics.transfers == []

    def test_cleanup_removes_objects(self, env, cluster):
        metrics = MetricsCollector()
        policy = RemoteStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        drive(env, policy.save_output(node, dag, placement, 7, "f0", 0, 1 * MB))
        policy.cleanup_invocation(dag, 7)
        assert object_key("lin", 7, "f0", 0) not in cluster.remote_store


class TestFaaStorePolicy:
    def test_colocated_consumers_use_local_store(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        node.set_faastore_quota(100 * MB)
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 1 * MB))
        assert metrics.transfers[0].local
        assert object_key("lin", 1, "f0", 0) in node.memstore
        assert object_key("lin", 1, "f0", 0) not in cluster.remote_store

    def test_remote_consumer_forces_remote_store(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = round_robin(dag, ["worker-0", "worker-1"])
        node = cluster.node(placement.node_of("f0"))
        node.set_faastore_quota(100 * MB)
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 1 * MB))
        assert not metrics.transfers[0].local
        assert object_key("lin", 1, "f0", 0) in cluster.remote_store

    def test_quota_overflow_falls_back_to_remote(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag(output_size=10 * MB)
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        node.set_faastore_quota(5 * MB)  # too small for the 10 MB object
        drive(env, policy.save_output(node, dag, placement, 1, "f0", 0, 10 * MB))
        assert not metrics.transfers[0].local
        assert node.memstore.rejected_puts >= 1

    def test_local_fetch_and_refcount_cleanup(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = fanout_dag(branches=2)  # head feeds b0 and b1
        placement = all_on(dag, "worker-0")
        node = cluster.node("worker-0")
        node.set_faastore_quota(100 * MB)
        drive(env, policy.save_output(node, dag, placement, 1, "head", 0, 2 * MB))
        key = object_key("fan", 1, "head", 0)
        drive(
            env,
            policy.fetch_input(node, dag, placement, 1, "head", "b0", 0, 2 * MB),
        )
        assert key in node.memstore  # b1 still needs it
        drive(
            env,
            policy.fetch_input(node, dag, placement, 1, "head", "b1", 0, 2 * MB),
        )
        assert key not in node.memstore  # freed after the last consumer
        assert node.memstore.used == 0

    def test_fetch_falls_back_to_remote_when_not_local(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag()
        placement = round_robin(dag, ["worker-0", "worker-1"])
        producer_node = cluster.node("worker-0")
        consumer_node = cluster.node("worker-1")
        drive(
            env,
            policy.save_output(producer_node, dag, placement, 1, "f0", 0, 1 * MB),
        )
        drive(
            env,
            policy.fetch_input(
                consumer_node, dag, placement, 1, "f0", "f1", 0, 1 * MB
            ),
        )
        gets = [t for t in metrics.transfers if t.phase == "get"]
        assert len(gets) == 1 and not gets[0].local

    def test_local_is_much_faster_than_remote(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag(output_size=20 * MB)
        node = cluster.node("worker-0")
        node.set_faastore_quota(100 * MB)
        local_placement = all_on(dag, "worker-0")
        drive(
            env,
            policy.save_output(node, dag, local_placement, 1, "f0", 0, 20 * MB),
        )
        local_put = metrics.transfers[-1].duration
        remote_placement = round_robin(dag, ["worker-0", "worker-1"])
        drive(
            env,
            policy.save_output(node, dag, remote_placement, 2, "f0", 0, 20 * MB),
        )
        remote_put = metrics.transfers[-1].duration
        assert local_put < remote_put / 20

    def test_cleanup_clears_both_tiers(self, env, cluster):
        metrics = MetricsCollector()
        policy = FaaStorePolicy(cluster, metrics)
        dag = linear_dag()
        node = cluster.node("worker-0")
        node.set_faastore_quota(100 * MB)
        drive(
            env,
            policy.save_output(node, dag, all_on(dag, "worker-0"), 1, "f0", 0, 1 * MB),
        )
        policy.cleanup_invocation(dag, 1)
        assert node.memstore.key_count == 0

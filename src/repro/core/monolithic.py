"""Monolithic deployment baseline (paper §2.4, Fig. 5).

All functions of the application run in one process on one server and
call each other directly: intermediate data is written to process
memory once and read by direct reference — no database, no network.
This is the baseline Fig. 5 compares the data-shipping FaaS deployment
against.

The DAG still executes with its real parallelism (bounded by the node's
cores), so the monolithic end-to-end latency is meaningful too; what
the experiment reports is the *data movement*: one local write per
producer output, nothing else.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..dag import WorkflowDAG
from ..metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
    TransferEvent,
)
from ..sim import Cluster, Node
from .master_engine import static_critical_exec
from .state import InvocationState, new_invocation_id

__all__ = ["MonolithicSystem"]


class MonolithicSystem:
    """Runs a workflow as a single multi-threaded process on one node."""

    mode = "monolithic"

    def __init__(
        self,
        cluster: Cluster,
        metrics: Optional[MetricsCollector] = None,
        host: Optional[Node] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.host = host or cluster.workers[0]
        self._workflows: dict[str, WorkflowDAG] = {}

    def register(self, dag: WorkflowDAG) -> None:
        dag.validate()
        self._workflows[dag.name] = dag

    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one monolithic invocation."""
        dag = self._workflows[workflow]
        invocation_id = new_invocation_id()
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=self.env.now,
            critical_path_exec=static_critical_exec(dag),
        )
        state = InvocationState(invocation_id)
        all_done = self.env.event()
        remaining = {"count": len(dag.node_names)}
        for source in dag.sources():
            state.state_of(source).triggered = True
            self.env.process(
                self._run_function(dag, invocation_id, source, state, remaining, all_done),
                name=f"mono:{workflow}:{source}",
            )
        yield all_done
        record.finished_at = self.env.now
        self.metrics.record_invocation(record)
        return record

    def _run_function(
        self, dag, invocation_id, function, state, remaining, all_done
    ) -> Generator:
        node_meta = dag.node(function)
        if not node_meta.is_virtual:
            instances = max(1, int(round(node_meta.map_factor)))
            workers = [
                self.env.process(
                    self._run_thread(node_meta.service_time),
                    name=f"mono-thread:{function}#{i}",
                )
                for i in range(instances)
            ]
            yield self.env.all_of(workers)
            if node_meta.output_size > 0 and dag.data_consumers(function):
                # Direct inter-call: consumed intermediate data is
                # materialized in process memory exactly once; terminal
                # outputs go straight to the user and are not
                # inter-function movement.
                rate = self.cluster.network.config.local_copy_rate
                duration = node_meta.output_size / rate
                yield self.env.timeout(duration)
                self.metrics.record_transfer(
                    TransferEvent(
                        workflow=dag.name,
                        invocation_id=invocation_id,
                        producer=function,
                        consumer="",
                        size=node_meta.output_size,
                        duration=duration,
                        phase="put",
                        local=True,
                    )
                )
        state.state_of(function).executed = True
        remaining["count"] -= 1
        if remaining["count"] == 0 and not all_done.triggered:
            all_done.succeed()
            return
        for successor in dag.successors(function):
            successor_state = state.state_of(successor)
            successor_state.mark_predecessor_done()
            if successor_state.ready(len(dag.predecessors(successor))):
                successor_state.triggered = True
                self.env.process(
                    self._run_function(
                        dag, invocation_id, successor, state, remaining, all_done
                    ),
                    name=f"mono:{dag.name}:{successor}",
                )

    def _run_thread(self, service_time: float) -> Generator:
        request = self.host.cpu.request(1)
        yield request
        try:
            yield self.env.timeout(service_time)
        finally:
            self.host.cpu.release(request)

"""Real-world serverless application benchmarks (paper §2.1).

Four applications the paper ports from public cloud-vendor samples:

- **Video-FFmpeg** (Alibaba Function Compute) — parallel transcoding of
  an uploaded video to multiple target formats.
- **Illegal Recognizer** (Google Cloud Functions) — OCR, translation,
  and offensive-content blurring over an image.
- **File Processing** (AWS Lambda) — real-time note processing with
  parallel HTML conversion and sentiment detection.
- **Word Count** — the classic map/reduce, after Zhang et al.

The function bodies are synthetic (the evaluation only measures
durations and bytes), but fan-out shapes, data sizes, and service times
follow the sample applications — e.g. the video upload is 4.23 MB,
matching Fig. 5's monolithic data-movement bar for Vid.
"""

from __future__ import annotations

from ..wdl import workflow_from_dict

__all__ = ["video_ffmpeg", "illegal_recognizer", "file_processing", "word_count"]

MB = 1024.0 * 1024.0


def video_ffmpeg():
    """Vid: upload -> parallel transcodes (one per target format) -> pack.

    Every transcode branch reads the full uploaded video, which is what
    amplifies 4.23 MB of monolithic data into ~97 MB of FaaS traffic
    (Fig. 5).
    """
    formats = ["360p", "480p", "720p", "1080p", "webm", "hls", "dash", "audio"]
    sizes = [4.5, 6.0, 8.5, 11.5, 8.0, 7.8, 8.0, 4.0]
    branches = [
        [
            {
                "task": f"transcode-{fmt}",
                "service_time": "600ms",
                "memory": "96MB",
                "output_size": f"{size}MB",
            }
        ]
        for fmt, size in zip(formats, sizes)
    ]
    return workflow_from_dict(
        {
            "name": "video-ffmpeg",
            "steps": [
                {
                    "task": "upload-probe",
                    "service_time": "200ms",
                    "memory": "64MB",
                    "output_size": "4.23MB",
                },
                # Each branch uploads its result to the object store
                # directly, as in the Alibaba sample.
                {"parallel": "transcode", "branches": branches},
            ],
        }
    )


def illegal_recognizer():
    """IR: OCR -> translate -> switch(offensive? blur : approve).

    A mostly sequential image pipeline with small payloads — the paper's
    lightest benchmark (0.20 s total transfer latency under HyperFlow).
    """
    return workflow_from_dict(
        {
            "name": "illegal-recognizer",
            "steps": [
                {
                    "task": "extract-text",
                    "service_time": "450ms",
                    "memory": "128MB",
                    "output_size": "0.4MB",
                },
                {
                    "task": "translate-text",
                    "service_time": "350ms",
                    "memory": "96MB",
                    "output_size": "0.3MB",
                },
                {
                    "switch": "moderation",
                    "cases": [
                        {
                            "condition": "offensive == true",
                            "steps": [
                                {
                                    "task": "blur-image",
                                    "service_time": "500ms",
                                    "memory": "128MB",
                                    "output_size": "1.8MB",
                                },
                            ],
                        },
                        {
                            "condition": "default",
                            "steps": [
                                {
                                    "task": "approve-image",
                                    "service_time": "100ms",
                                    "memory": "64MB",
                                    "output_size": "0.1MB",
                                },
                            ],
                        },
                    ],
                },
                {
                    "task": "publish-verdict",
                    "service_time": "150ms",
                    "memory": "64MB",
                    "output_size": "0.2MB",
                },
            ],
        }
    )


def file_processing():
    """FP: fetch note -> parallel(convert-to-HTML, detect-sentiment) -> store."""
    return workflow_from_dict(
        {
            "name": "file-processing",
            "steps": [
                {
                    "task": "fetch-note",
                    "service_time": "200ms",
                    "memory": "64MB",
                    "output_size": "2.5MB",
                },
                {
                    "parallel": "process",
                    "branches": [
                        [
                            {
                                "task": "convert-html",
                                "service_time": "400ms",
                                "memory": "96MB",
                                "output_size": "3MB",
                            }
                        ],
                        [
                            {
                                "task": "detect-sentiment",
                                "service_time": "500ms",
                                "memory": "128MB",
                                "output_size": "0.3MB",
                            }
                        ],
                        [
                            {
                                "task": "extract-metadata",
                                "service_time": "400ms",
                                "memory": "64MB",
                                "output_size": "0.4MB",
                            }
                        ],
                    ],
                },
                {
                    "task": "store-results",
                    "service_time": "250ms",
                    "memory": "64MB",
                    "output_size": "1MB",
                },
            ],
        }
    )


def word_count(items: int = 8):
    """WC: split -> foreach count (mapped executors) -> reduce -> report."""
    return workflow_from_dict(
        {
            "name": "word-count",
            "steps": [
                {
                    "task": "split-corpus",
                    "service_time": "250ms",
                    "memory": "64MB",
                    "output_size": "8MB",
                },
                {
                    "foreach": "mappers",
                    "items": items,
                    "steps": [
                        {
                            "task": "count-words",
                            "service_time": "400ms",
                            "memory": "96MB",
                            "output_size": "4MB",
                        },
                    ],
                },
                {
                    "task": "reduce-counts",
                    "service_time": "350ms",
                    "memory": "96MB",
                    "output_size": "1.5MB",
                },
                {
                    "task": "report",
                    "service_time": "100ms",
                    "memory": "64MB",
                    "output_size": "0.2MB",
                },
            ],
        }
    )

"""FaaSFlow's WorkerSP: per-worker engines with local triggering (§3.1, §4.2).

Each worker node runs a :class:`WorkerEngine` holding the *Workflow*
structures (sub-graphs) the graph scheduler assigned to it.  When a
local function finishes, the engine inspects its successors: local ones
are triggered over an in-process RPC; remote ones receive a state
message over a worker-to-worker TCP connection.  No task assignment
ever crosses the network — the master only partitions graphs and
(acting as the client) receives the final execution state from the
sink functions' workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..dag import WorkflowDAG
from ..metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
)
from ..obs.spans import SpanKind
from ..sim import Cluster, Node, Resource
from .config import EngineConfig
from .faastore import DataPolicy, FaaStorePolicy
from .faults import FaultInjector, FunctionFailure
from .master_engine import static_critical_exec
from .runtime import FunctionRuntime
from .switching import is_skipped
from .state import (
    InvocationID,
    Placement,
    WorkflowStructure,
    new_invocation_id,
)
from .tracing import Kind, Tracer

__all__ = ["WorkerEngine", "FaaSFlowSystem"]


@dataclass
class _InvocationContext:
    """Client-side bookkeeping for one in-flight invocation."""

    record: InvocationRecord
    version: int
    sinks_remaining: int
    all_done: object  # kernel Event
    failed: object = None  # kernel Event


@dataclass
class _DeployedWorkflow:
    dag: WorkflowDAG
    placement: Placement
    critical_exec: float
    live_invocations: int = 0


class WorkerEngine:
    """The decentralized engine on one worker node."""

    def __init__(self, system: "FaaSFlowSystem", node: Node):
        self.system = system
        self.node = node
        self.env = node.env
        self._lock = Resource(self.env, capacity=1)
        # (workflow, version) -> structure for the local sub-graph.
        self._structures: dict[tuple[str, int], WorkflowStructure] = {}
        self.states_synced = 0  # cross-worker state messages received
        self.events_handled = 0  # engine-loop steps executed
        self.busy_time = 0.0  # seconds the engine loop was occupied

    # -- deployment ---------------------------------------------------------
    def deploy(self, structure: WorkflowStructure) -> None:
        self._structures[(structure.workflow, structure.version)] = structure

    def retire(self, workflow: str, version: int) -> None:
        """Red-black support: drop an out-of-date sub-graph version."""
        structure = self._structures.pop((workflow, version), None)
        if structure is None:
            return
        for function in structure.local_functions:
            if not structure.info(function).is_virtual:
                self.node.containers.recycle_version(function, version + 1)

    def structure(self, workflow: str, version: int) -> WorkflowStructure:
        try:
            return self._structures[(workflow, version)]
        except KeyError:
            raise KeyError(
                f"no sub-graph of {workflow!r} v{version} on {self.node.name}"
            ) from None

    def has_structure(self, workflow: str, version: int) -> bool:
        return (workflow, version) in self._structures

    @property
    def deployed_count(self) -> int:
        return len(self._structures)

    # -- engine event loop ----------------------------------------------------
    def _engine_step(self) -> Generator:
        request = self._lock.request()
        yield request
        try:
            yield self.env.timeout(self.system.config.worker_process_time)
            self.events_handled += 1
            self.busy_time += self.system.config.worker_process_time
        finally:
            self._lock.release(request)

    # -- state synchronization (paper Fig. 6) ---------------------------------
    def receive_state_update(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A predecessor of a local ``function`` finished somewhere."""
        yield from self._engine_step()
        structure = self.structure(workflow, version)
        info = structure.info(function)
        state = structure.invocation(invocation_id).state_of(function)
        state.mark_predecessor_done()
        if state.ready(info.predecessors_count):
            state.triggered = True
            self.env.process(
                self.run_function(workflow, version, invocation_id, function),
                name=f"worker:{self.node.name}:{function}",
            )

    def trigger_source(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """Invocation request for an entry function arrived at this node."""
        yield from self._engine_step()
        structure = self.structure(workflow, version)
        state = structure.invocation(invocation_id).state_of(function)
        if not state.triggered:
            state.triggered = True
            self.env.process(
                self.run_function(workflow, version, invocation_id, function),
                name=f"worker:{self.node.name}:{function}",
            )

    # -- local execution -----------------------------------------------------
    def run_function(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        structure = self.structure(workflow, version)
        info = structure.info(function)
        self.system.trace(
            Kind.FUNCTION_TRIGGERED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        skipped = (
            self.system.config.evaluate_switches
            and not info.is_virtual
            and is_skipped(structure.dag, function, invocation_id)
        )
        if info.is_virtual or skipped:
            # Virtual step markers (and non-selected switch arms) cost
            # one local bookkeeping action, no container and no data.
            yield self.env.timeout(self.system.config.local_trigger_time)
            if skipped:
                self.system.trace(
                    Kind.FUNCTION_EXECUTED, workflow, invocation_id,
                    function=function, node=self.node.name, detail="skipped",
                )
        else:
            try:
                result = yield self.env.process(
                    self.system.runtime.execute(
                        structure.dag,
                        structure.placement,
                        invocation_id,
                        function,
                        version=version,
                    )
                )
            except FunctionFailure:
                # The task exhausted its retries: report the failure to
                # the client like a sink would report success.
                report_start = self.env.now
                yield self.system.network.message(
                    self.node.nic,
                    self.system.client_node.nic,
                    self.system.config.result_message_size,
                    tag=f"failure:{function}",
                )
                spans = self.system.spans
                if spans.enabled:
                    spans.record(
                        SpanKind.STATE_SYNC,
                        report_start,
                        self.env.now,
                        workflow=workflow,
                        invocation_id=invocation_id,
                        function=function,
                        node=self.node.name,
                        parent=spans.root_of(invocation_id),
                        role="failure-report",
                        dst=self.system.client_node.name,
                    )
                self.system.invocation_failed(
                    structure.workflow, invocation_id, function
                )
                return
            context = self.system.context(invocation_id)
            if context is not None:
                context.record.cold_starts += result.cold_starts
            if result.cold_starts:
                self.system.trace(
                    Kind.COLD_START, workflow, invocation_id,
                    function=function, node=self.node.name,
                    detail=str(result.cold_starts),
                )
        structure.invocation(invocation_id).state_of(function).executed = True
        self.system.trace(
            Kind.FUNCTION_EXECUTED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        yield from self._propagate(structure, invocation_id, function)

    def _propagate(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        info = structure.info(function)
        if not info.successors:
            # A sink finished: report the execution state to the client.
            report_start = self.env.now
            yield self.system.network.message(
                self.node.nic,
                self.system.client_node.nic,
                self.system.config.result_message_size,
                tag=f"sink:{function}",
            )
            spans = self.system.spans
            if spans.enabled:
                spans.record(
                    SpanKind.STATE_SYNC,
                    report_start,
                    self.env.now,
                    workflow=structure.workflow,
                    invocation_id=invocation_id,
                    function=function,
                    node=self.node.name,
                    parent=spans.root_of(invocation_id),
                    role="sink-report",
                    dst=self.system.client_node.name,
                )
            self.system.sink_completed(structure.workflow, invocation_id)
            return
        for successor in info.successors:
            target = info.successor_locations[successor]
            if target == self.node.name:
                self.env.process(
                    self._notify_local(structure, invocation_id, successor),
                    name=f"rpc:{function}->{successor}",
                )
            else:
                self.env.process(
                    self._notify_remote(structure, invocation_id, successor, target),
                    name=f"sync:{function}->{successor}",
                )

    def _notify_local(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
    ) -> Generator:
        yield self.env.timeout(self.system.config.local_trigger_time)
        yield from self.receive_state_update(
            structure.workflow, structure.version, invocation_id, successor
        )

    def _notify_remote(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
        target: str,
    ) -> Generator:
        remote_engine = self.system.engine(target)
        sync_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            self.system.config.state_message_size,
            tag=f"state:{successor}",
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=successor,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="state",
                dst=remote_engine.node.name,
            )
        remote_engine.states_synced += 1
        self.system.trace(
            Kind.STATE_SYNC, structure.workflow, invocation_id,
            function=successor, node=remote_engine.node.name,
            detail=f"from {self.node.name}",
        )
        yield from remote_engine.receive_state_update(
            structure.workflow, structure.version, invocation_id, successor
        )


class FaaSFlowSystem:
    """The WorkerSP workflow system: graph-partitioned distributed engines."""

    mode = "worker-sp"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        policy: Optional[DataPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.spans = cluster.spans
        self.metrics = metrics if metrics is not None else MetricsCollector()
        if self.spans.enabled:
            self.metrics.spans = self.spans
        self.policy = policy or FaaStorePolicy(cluster, self.metrics)
        self.runtime = FunctionRuntime(
            cluster, self.config, self.policy, faults=faults
        )
        # The master node doubles as the invoking client (paper §5.1).
        self.client_node = cluster.storage_node
        self.engines: dict[str, WorkerEngine] = {
            worker.name: WorkerEngine(self, worker)
            for worker in cluster.workers
        }
        self._deployed: dict[tuple[str, int], _DeployedWorkflow] = {}
        self._current_version: dict[str, int] = {}
        self._contexts: dict[InvocationID, _InvocationContext] = {}

    # -- deployment ---------------------------------------------------------
    def engine(self, worker_name: str) -> WorkerEngine:
        try:
            return self.engines[worker_name]
        except KeyError:
            raise KeyError(f"no engine on {worker_name!r}") from None

    def deploy(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        quotas: Optional[dict[str, float]] = None,
        prewarm: int = 0,
        container_limits: Optional[dict[str, float]] = None,
    ) -> None:
        """Distribute sub-graphs to the worker engines (one version).

        ``quotas`` (worker name -> bytes, from the scheduler's
        reclamation pass) pins each node's FaaStore pool; omit it to
        leave the pools unchanged.  ``prewarm`` starts that many
        containers per function on its placed worker so first
        invocations skip the cold start.  Re-deploying an
        already-deployed workflow performs a red-black rollout: the new
        version becomes current immediately, old versions drain and are
        retired once their invocations finish.
        """
        dag.validate()
        placement.validate_against(dag)
        if quotas is not None:
            for worker in self.cluster.workers:
                worker.set_faastore_quota(
                    quotas.get(worker.name, 0.0), workflow=dag.name
                )
        if container_limits:
            # Fig. 10(b): the reclaimed memory physically comes out of
            # each function's own containers.
            for function, limit in container_limits.items():
                worker = self.cluster.node(placement.node_of(function))
                worker.containers.set_function_limit(function, limit)
        previous = self._current_version.get(dag.name)
        version = (previous or 0) + 1
        placement = placement.with_version(version)
        for worker_name, engine in self.engines.items():
            local = placement.functions_on(worker_name)
            if local:
                engine.deploy(
                    WorkflowStructure(dag, placement, local, version=version)
                )
        if prewarm > 0:
            for node in dag.real_nodes():
                worker = self.cluster.node(placement.node_of(node.name))
                instances = max(1, int(round(node.map_factor))) * prewarm
                worker.containers.prewarm(
                    node.name, count=instances, version=version
                )
        self._deployed[(dag.name, version)] = _DeployedWorkflow(
            dag=dag,
            placement=placement,
            critical_exec=static_critical_exec(dag),
        )
        self._current_version[dag.name] = version
        if previous is not None:
            self._try_retire(dag.name, previous)

    def current_version(self, workflow: str) -> int:
        try:
            return self._current_version[workflow]
        except KeyError:
            raise KeyError(f"workflow {workflow!r} is not deployed") from None

    def deployed(self, workflow: str, version: Optional[int] = None):
        if version is None:
            version = self.current_version(workflow)
        return self._deployed[(workflow, version)]

    def _try_retire(self, workflow: str, version: int) -> None:
        deployed = self._deployed.get((workflow, version))
        if deployed is None or deployed.live_invocations > 0:
            return
        if version == self._current_version.get(workflow):
            return
        del self._deployed[(workflow, version)]
        for engine in self.engines.values():
            engine.retire(workflow, version)

    # -- invocation ----------------------------------------------------------
    def context(self, invocation_id: InvocationID) -> Optional[_InvocationContext]:
        return self._contexts.get(invocation_id)

    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one end-to-end invocation (client side)."""
        version = self.current_version(workflow)
        deployed = self._deployed[(workflow, version)]
        dag, placement = deployed.dag, deployed.placement
        invocation_id = new_invocation_id()
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=self.env.now,
            critical_path_exec=deployed.critical_exec,
        )
        context = _InvocationContext(
            record=record,
            version=version,
            sinks_remaining=len(dag.sinks()),
            all_done=self.env.event(),
            failed=self.env.event(),
        )
        self._contexts[invocation_id] = context
        deployed.live_invocations += 1
        self.trace(Kind.INVOCATION_START, workflow, invocation_id)
        if self.spans.enabled:
            self.spans.start_invocation(
                invocation_id, workflow=workflow, mode=self.mode
            )
        # The client ships the invocation request to each entry
        # function's worker; from there everything is worker-side.
        for source in dag.sources():
            self.env.process(
                self._send_invocation(
                    workflow, version, invocation_id, source, placement
                ),
                name=f"invoke:{workflow}:{source}",
            )
        timeout = self.env.timeout(self.config.execution_timeout)
        finished = yield self.env.any_of(
            [context.all_done, context.failed, timeout]
        )
        if context.all_done in finished:
            record.finished_at = self.env.now
        elif context.failed in finished:
            record.status = InvocationStatus.FAILED
            record.finished_at = self.env.now
        else:
            record.status = InvocationStatus.TIMEOUT
            record.finished_at = record.started_at + self.config.execution_timeout
        self.policy.cleanup_invocation(dag, invocation_id)
        self.metrics.record_invocation(record)
        self.trace(
            Kind.INVOCATION_END, workflow, invocation_id, detail=record.status
        )
        if self.spans.enabled:
            root = self.spans.root_of(invocation_id)
            if root is not None:
                self.spans.end(root, status=record.status)
        self._contexts.pop(invocation_id, None)
        # Release the per-invocation *State* objects on every engine
        # that holds a sub-graph of this workflow (paper §4.2.1).
        for engine in self.engines.values():
            if engine.has_structure(workflow, version):
                engine.structure(workflow, version).release_invocation(
                    invocation_id
                )
        deployed.live_invocations -= 1
        if version != self._current_version.get(workflow):
            self._try_retire(workflow, version)
        return record

    def _send_invocation(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        source: str,
        placement: Placement,
    ) -> Generator:
        engine = self.engine(placement.node_of(source))
        send_start = self.env.now
        yield self.network.message(
            self.client_node.nic,
            engine.node.nic,
            self.config.assign_message_size,
            tag=f"invoke:{source}",
        )
        if self.spans.enabled:
            self.spans.record(
                SpanKind.STATE_SYNC,
                send_start,
                self.env.now,
                workflow=workflow,
                invocation_id=invocation_id,
                function=source,
                node=self.client_node.name,
                parent=self.spans.root_of(invocation_id),
                role="invoke",
                dst=engine.node.name,
            )
        yield from engine.trigger_source(workflow, version, invocation_id, source)

    def trace(self, kind: str, workflow: str, invocation_id: InvocationID,
              function: str = "", node: str = "", detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, kind, workflow, invocation_id,
                function=function, node=node, detail=detail,
            )

    def invocation_failed(
        self, workflow: str, invocation_id: InvocationID, function: str
    ) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # already timed out / torn down
        if context.failed is not None and not context.failed.triggered:
            context.failed.succeed(function)

    def sink_completed(self, workflow: str, invocation_id: InvocationID) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # invocation already timed out and was torn down
        context.sinks_remaining -= 1
        if context.sinks_remaining == 0 and not context.all_done.triggered:
            context.all_done.succeed()

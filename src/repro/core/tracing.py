"""Execution tracing: a structured event log of engine decisions.

Attach a :class:`Tracer` to either workflow system to record what the
engines actually did — when each function triggered and finished, which
node ran it, where state-sync messages flowed, and when containers
cold-started.  Tests use it to assert execution invariants (every
function exactly once per invocation, never before its predecessors);
users get a timeline for debugging placements.

Tracing is opt-in and costs nothing when absent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TraceEvent", "Tracer", "Kind"]


class Kind:
    """Event kinds emitted by the instrumented systems."""

    INVOCATION_START = "invocation-start"
    INVOCATION_END = "invocation-end"
    FUNCTION_TRIGGERED = "function-triggered"
    FUNCTION_EXECUTED = "function-executed"
    STATE_SYNC = "state-sync"
    TASK_ASSIGNED = "task-assigned"
    COLD_START = "cold-start"
    RETRY = "retry"
    CANCELLED = "cancelled"
    NODE_CRASH = "node-crash"
    NODE_RECOVERY = "node-recovery"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    kind: str
    workflow: str
    invocation_id: int
    function: str = ""
    node: str = ""
    detail: str = ""


class Tracer:
    """Accumulates :class:`TraceEvent` records with query helpers."""

    def __init__(self, limit: int = 1_000_000):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        # Bounded ring, drop-*oldest*: a long run keeps the tail of its
        # history (the part you inspect after a failure) instead of
        # freezing the head and silently discarding everything after.
        self.events: deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        workflow: str,
        invocation_id: int,
        function: str = "",
        node: str = "",
        detail: str = "",
    ) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
        self.events.append(
            TraceEvent(
                time=time,
                kind=kind,
                workflow=workflow,
                invocation_id=invocation_id,
                function=function,
                node=node,
                detail=detail,
            )
        )

    # -- queries ------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_invocation(self, invocation_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.invocation_id == invocation_id]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def execution_counts(self, invocation_id: int) -> dict[str, int]:
        """How many times each function executed in one invocation."""
        counts: dict[str, int] = {}
        for event in self.of_invocation(invocation_id):
            if event.kind == Kind.FUNCTION_EXECUTED:
                counts[event.function] = counts.get(event.function, 0) + 1
        return counts

    def execution_time(self, invocation_id: int, function: str) -> float:
        """Completion time of ``function`` in ``invocation_id``."""
        for event in self.of_invocation(invocation_id):
            if (
                event.kind == Kind.FUNCTION_EXECUTED
                and event.function == function
            ):
                return event.time
        raise KeyError(
            f"{function!r} did not execute in invocation {invocation_id}"
        )

    def timeline(self, invocation_id: int) -> str:
        """Human-readable trace of one invocation."""
        lines = []
        for event in self.of_invocation(invocation_id):
            location = f" @{event.node}" if event.node else ""
            subject = f" {event.function}" if event.function else ""
            detail = f" ({event.detail})" if event.detail else ""
            lines.append(
                f"{event.time:10.4f}  {event.kind:<19}{subject}{location}{detail}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

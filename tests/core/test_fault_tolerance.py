"""Tests for the fault-tolerance subsystem: retry policy, cancellation
propagation, node crashes, and recovery semantics."""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    CancelCause,
    CancelKind,
    EngineConfig,
    FaaSFlowSystem,
    FaultDriver,
    FaultInjector,
    FaultPlan,
    FunctionFailure,
    HyperFlowServerlessSystem,
    NetworkDegradation,
    NodeCrash,
    RetryPolicy,
    hash_partition,
)
from repro.core.runtime import FunctionRuntime
from repro.core.faastore import FaaStorePolicy
from repro.metrics import InvocationStatus, MetricsCollector
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

from .conftest import MB, all_on, fanout_dag, linear_dag, round_robin


def drain(env):
    """Flush every event scheduled for the current timestep."""
    env.run(until=env.now)


def assert_no_zombies(system, cluster):
    """After an invocation dies, nothing of it may still be running."""
    assert system.registry.live_count == 0
    for worker in cluster.workers:
        assert worker.cpu.busy == 0


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=0.5, backoff_factor=2.0,
            backoff_max=30.0, jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(1.0)
        assert policy.delay(3) == pytest.approx(2.0)
        assert policy.delay(4) == pytest.approx(4.0)

    def test_backoff_cap(self):
        policy = RetryPolicy(
            backoff_base=10.0, backoff_factor=4.0, backoff_max=15.0,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(10.0)
        assert policy.delay(2) == pytest.approx(15.0)
        assert policy.delay(9) == pytest.approx(15.0)

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.25, seed=11)
        same = RetryPolicy(backoff_base=1.0, jitter=0.25, seed=11)
        other_seed = RetryPolicy(backoff_base=1.0, jitter=0.25, seed=12)
        delays = [policy.delay(1, key=("f", i)) for i in range(50)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert delays == [same.delay(1, key=("f", i)) for i in range(50)]
        assert delays != [other_seed.delay(1, key=("f", i)) for i in range(50)]
        # The spread is real, not a constant offset.
        assert max(delays) - min(delays) > 0.1

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(backoff_base=0.0, jitter=0.5)
        assert policy.delay(1) == 0.0
        assert policy.delay(7) == 0.0

    def test_from_config(self):
        config = EngineConfig(
            max_retries=4, retry_backoff_base=0.3, retry_backoff_factor=3.0,
            retry_backoff_max=9.0, retry_jitter=0.1, retry_seed=5,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 4
        assert policy.attempts == 5
        assert policy.delay(1, key=("k",)) == pytest.approx(0.3, rel=0.11)
        assert policy.backoff_max == 9.0


class TestTimerCancellation:
    def test_kernel_heap_stays_bounded(self, env, cluster):
        """Satellite: finished invocations must cancel their watchdog
        timers instead of leaving one 60 s timeout each in the heap."""
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        run_closed_loop(system, "lin", 150)
        drain(env)
        # Without Timeout.cancel() + heap compaction this holds one 60 s
        # watchdog per invocation (>= 150 entries by now); with them the
        # heap is bounded by live events plus the compaction threshold.
        assert env.queued_events <= 80

    def test_master_heap_stays_bounded(self, env, cluster):
        system = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=False)
        )
        dag = linear_dag(n=3)
        system.register(dag, all_on(dag, "worker-0"))
        run_closed_loop(system, "lin", 150)
        drain(env)
        assert env.queued_events <= 80


class TestCancellationPropagation:
    def _crashing_system(self, cluster, engine, **config_kwargs):
        faults = FaultInjector(default_rate=1.0, seed=3)
        config = EngineConfig(
            ship_data=False, max_retries=0, **config_kwargs
        )
        dag = linear_dag(n=3)
        if engine == "master":
            system = HyperFlowServerlessSystem(cluster, config, faults=faults)
            system.register(dag, round_robin(dag, cluster.worker_names()))
        else:
            system = FaaSFlowSystem(cluster, config, faults=faults)
            system.deploy(dag, round_robin(dag, cluster.worker_names()))
        return system

    @pytest.mark.parametrize("engine", ["worker", "master"])
    def test_failed_invocation_leaves_no_processes(self, env, cluster, engine):
        system = self._crashing_system(cluster, engine)
        records = run_closed_loop(system, "lin", 3)
        drain(env)
        assert all(r.status == InvocationStatus.FAILED for r in records)
        assert_no_zombies(system, cluster)
        assert system.registry.tracked_invocations == 0

    @pytest.mark.parametrize("engine", ["worker", "master"])
    def test_timed_out_invocation_leaves_no_processes(
        self, env, cluster, engine
    ):
        """A fan-out wide enough to overrun the execution timeout: the
        client gives up and every still-running task is interrupted."""
        config = EngineConfig(ship_data=False, execution_timeout=0.2)
        dag = fanout_dag(branches=6)
        if engine == "master":
            system = HyperFlowServerlessSystem(cluster, config)
            system.register(dag, all_on(dag, "worker-0"))
        else:
            system = FaaSFlowSystem(cluster, config)
            system.deploy(dag, all_on(dag, "worker-0"))
        records = run_closed_loop(system, "fan", 2)
        drain(env)
        assert all(r.status == InvocationStatus.TIMEOUT for r in records)
        assert_no_zombies(system, cluster)

    def test_foreach_sibling_cancellation(self, env):
        """Satellite: one failing foreach instance interrupts its
        siblings instead of letting them run to completion."""
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=1,
                container=ContainerSpec(cold_start_time=0.01),
            ),
        )

        class CrashFirstInstance(FaultInjector):
            def __init__(self):
                super().__init__(default_rate=0.0)
                self._armed = True

            def should_crash(self, function):
                if function == "wide" and self._armed:
                    self._armed = False
                    self.injected += 1
                    return True
                return False

        from repro.dag import WorkflowDAG

        dag = WorkflowDAG("foreach")
        # 12 instances on 8 cores: the second wave is still queued when
        # the first wave's crash lands, so there are live siblings.
        dag.add_function(
            "wide", service_time=0.5, output_size=0, memory=32 * MB,
            map_factor=12,
        )
        system = FaaSFlowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=0),
            faults=CrashFirstInstance(),
        )
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "foreach", 1)[0]
        drain(env)
        assert record.status == InvocationStatus.FAILED
        # Siblings were interrupted: cores free, nothing alive, and the
        # invocation ended at the first crash (~0.5 s), not after the
        # second wave (~1.0 s).
        assert_no_zombies(system, cluster)
        assert record.latency < 0.9

    def test_same_timestep_failure_wins(self, env, cluster):
        """Satellite: when a sink report and a failure report land in
        the same timestep, the invocation must report FAILED."""
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        dag = linear_dag(n=2)
        system.deploy(dag, all_on(dag, "worker-0"))

        status = {}

        def client():
            proc = env.process(system.invoke("lin"))
            # Let the invocation register its context, then complete
            # all sinks and fail it within one timestep.
            yield env.timeout(0.01)
            invocation_id = next(iter(system._contexts))
            for _ in dag.sinks():
                system.sink_completed("lin", invocation_id)
            system.invocation_failed("lin", invocation_id, "f1")
            record = yield proc
            status["value"] = record.status

        done = env.process(client())
        env.run(until=done)
        drain(env)
        assert status["value"] == InvocationStatus.FAILED

    def test_failure_blocks_later_sink_completions(self, env, cluster):
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        dag = fanout_dag(branches=2)
        system.deploy(dag, all_on(dag, "worker-0"))

        def client():
            proc = env.process(system.invoke("fan"))
            yield env.timeout(0.01)
            invocation_id = next(iter(system._contexts))
            context = system.context(invocation_id)
            sinks_before = context.sinks_remaining
            system.invocation_failed("fan", invocation_id, "b0")
            system.sink_completed("fan", invocation_id)
            # The late sink must not count toward completion once the
            # invocation has failed.
            assert context.failed == "b0"
            assert context.sinks_remaining == sinks_before
            yield proc

        done = env.process(client())
        env.run(until=done)
        drain(env)


class TestAttemptAccounting:
    def _execute(self, env, cluster, faults, config, dag):
        system = FaaSFlowSystem(cluster, config, faults=faults)
        system.deploy(dag, all_on(dag, "worker-0"))
        outcome = {}

        def driver():
            try:
                yield env.process(
                    system.runtime.execute(
                        dag,
                        system.deployed(dag.name).placement,
                        1,
                        dag.node_names[0],
                    )
                )
            except FunctionFailure as failure:
                outcome["failure"] = failure

        done = env.process(driver())
        env.run(until=done)
        drain(env)
        return outcome.get("failure")

    def test_attempts_reflect_crash_retries(self, env, cluster):
        """Satellite: FunctionFailure.attempts is the real attempt
        count, not blindly max_retries + 1."""
        dag = linear_dag(n=1)
        failure = self._execute(
            env, cluster,
            FaultInjector(default_rate=1.0, seed=1),
            EngineConfig(ship_data=False, max_retries=2),
            dag,
        )
        assert failure is not None
        assert failure.attempts == 3

    def test_attempts_reflect_straggler_kills(self, env, cluster):
        """Every attempt overruns function_timeout: each is killed and
        retried, and the final failure counts all of them."""
        dag = linear_dag(n=1, service_time=1.0)
        failure = self._execute(
            env, cluster,
            None,
            EngineConfig(
                ship_data=False, max_retries=1, function_timeout=0.2
            ),
            dag,
        )
        assert failure is not None
        assert failure.attempts == 2

    def test_straggler_within_budget_recovers(self, env):
        """First attempt straggles (cold start + exec > timeout), the
        warm retry fits: the invocation succeeds with one retry."""
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=1, container=ContainerSpec(cold_start_time=0.4)
            ),
        )
        dag = linear_dag(n=1, service_time=0.3)
        system = FaaSFlowSystem(
            cluster,
            EngineConfig(
                ship_data=False, max_retries=2, function_timeout=0.5
            ),
        )
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        drain(env)
        assert record.status == InvocationStatus.OK
        assert record.retries >= 1


def _crash_run(engine, n=4, crash_at=1.0, recovery=3.0, seed=None):
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(workers=3, container=ContainerSpec(cold_start_time=0.1)),
    )
    config = EngineConfig(
        ship_data=False, max_retries=3, execution_timeout=120.0
    )
    from repro.workloads import build

    dag = build("epigenomics")
    if engine == "master":
        system = HyperFlowServerlessSystem(cluster, config)
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        system = FaaSFlowSystem(cluster, config)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    if seed is None:
        plan = FaultPlan(
            node_crashes=(
                NodeCrash(node="worker-1", at=crash_at, recovery=recovery),
            )
        )
    else:
        plan = FaultPlan.random(
            cluster.worker_names(), horizon=10.0, crashes=2,
            recovery=recovery, seed=seed,
        )
    driver = FaultDriver(cluster, plan).attach(system)
    driver.start()
    records = run_closed_loop(system, dag.name, n)
    drain(env)
    return env, cluster, system, driver, records


class TestNodeCrashes:
    def test_workersp_recovers_by_retriggering(self):
        """WorkerSP recovery semantics: the crashed node's pending
        sub-graph tasks are re-triggered at engine level."""
        env, cluster, system, driver, records = _crash_run("worker")
        assert driver.node_crashes_fired == 1
        assert all(r.status == InvocationStatus.OK for r in records)
        assert system.retriggered > 0
        # Engine-level recovery, not runtime retries.
        assert sum(r.retries for r in records) == 0
        assert_no_zombies(system, cluster)

    def test_mastersp_recovers_by_runtime_retry(self):
        """MasterSP recovery semantics: the master survives and the
        runtime's retry ladder re-runs the killed instances."""
        env, cluster, system, driver, records = _crash_run("master")
        assert driver.node_crashes_fired == 1
        assert all(r.status == InvocationStatus.OK for r in records)
        assert sum(r.retries for r in records) > 0
        assert_no_zombies(system, cluster)

    @pytest.mark.parametrize("engine", ["worker", "master"])
    def test_deterministic_replay_under_seed(self, engine):
        """The whole crash schedule and its consequences replay
        bit-identically under a fixed plan seed."""

        def fingerprint():
            _, _, system, driver, records = _crash_run(engine, seed=21)
            return (
                [r.status for r in records],
                [round(r.latency, 12) for r in records],
                [r.retries for r in records],
                driver.node_crashes_fired,
            )

        assert fingerprint() == fingerprint()

    def test_crashed_node_containers_destroyed(self):
        env, cluster, system, driver, records = _crash_run("worker")
        node = cluster.node("worker-1")
        assert node.containers.node_failures == 1
        assert node.up  # recovered by the end of the run

    def test_degradation_window_slows_but_never_kills(self):
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=3, container=ContainerSpec(cold_start_time=0.1)
            ),
        )
        from repro.workloads import build

        dag = build("epigenomics")
        system = FaaSFlowSystem(cluster, EngineConfig())
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
        plan = FaultPlan(
            degradations=(
                NetworkDegradation(start=0.5, duration=5.0, factor=0.2),
            )
        )
        driver = FaultDriver(cluster, plan).attach(system)
        driver.start()
        records = run_closed_loop(system, dag.name, 3)
        drain(env)
        assert driver.degradations_fired == 1
        assert all(r.status == InvocationStatus.OK for r in records)
        # Bandwidths restored after the window.
        for worker in cluster.workers:
            assert worker.nic.bandwidth == cluster.config.worker.bandwidth


class TestBackoffIntegration:
    def test_backoff_adds_latency_on_crashed_paths(self, env, cluster):
        def run_with(base):
            local_env = Environment()
            local_cluster = Cluster(
                local_env,
                ClusterConfig(
                    workers=3, container=ContainerSpec(cold_start_time=0.1)
                ),
            )
            class CrashTwice(FaultInjector):
                def __init__(self):
                    super().__init__(default_rate=0.0)
                    self.remaining = 2

                def should_crash(self, function):
                    if self.remaining > 0:
                        self.remaining -= 1
                        self.injected += 1
                        return True
                    return False

            dag = linear_dag(n=2)
            system = FaaSFlowSystem(
                local_cluster,
                EngineConfig(
                    ship_data=False, max_retries=3,
                    retry_backoff_base=base, retry_jitter=0.0,
                ),
                faults=CrashTwice(),
            )
            system.deploy(dag, all_on(dag, "worker-0"))
            record = run_closed_loop(system, "lin", 1)[0]
            return record

        fast = run_with(0.0)
        slow = run_with(0.5)
        assert fast.status == slow.status == InvocationStatus.OK
        assert fast.retries == slow.retries == 2
        # Two retries with delays 0.5 and 1.0 vs zero backoff.
        assert slow.latency == pytest.approx(fast.latency + 1.5, abs=0.05)


class TestRetryConfigValidation:
    """Satellite: jitter without a backoff base is a silent no-op in
    the delay formula — the config must say so at construction."""

    def test_zero_base_nonzero_jitter_warns(self):
        with pytest.warns(UserWarning, match="retry_jitter > 0 has no effect"):
            config = EngineConfig(retry_backoff_base=0.0, retry_jitter=0.5)
        # Behavior is pinned, not changed: delays stay 0.
        policy = RetryPolicy.from_config(config)
        assert policy.delay(1) == 0.0
        assert policy.delay(5) == 0.0

    def test_positive_base_with_jitter_is_silent(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            EngineConfig(retry_backoff_base=0.2, retry_jitter=0.5)

    def test_zero_jitter_zero_base_is_silent(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            EngineConfig(retry_backoff_base=0.0, retry_jitter=0.0)

"""Measurement: invocation records, transfer ledger, aggregation.

The experiments (paper §5) report scheduling overhead, data-movement
latency, tail latency, and throughput degradation.  Everything they
need is recorded here: one :class:`InvocationRecord` per workflow
invocation and one :class:`TransferEvent` per data-plane storage
operation, plus aggregation helpers (percentiles, averages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..obs.spans import BREAKDOWN_COMPONENTS, decompose

__all__ = [
    "InvocationRecord",
    "TransferEvent",
    "MetricsCollector",
    "percentile",
    "InvocationStatus",
]


def percentile(values: Iterable[float], q: float) -> float:
    """The q-th percentile (0-100) with linear interpolation.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    if len(data) == 1:
        return data[0]
    rank = (q / 100) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    # data[low] + f * (delta) is exact when both values are equal and
    # monotone in q, unlike the a*(1-f) + b*f form.
    return data[low] + fraction * (data[high] - data[low])


class InvocationStatus:
    OK = "ok"
    TIMEOUT = "timeout"
    FAILED = "failed"


@dataclass
class InvocationRecord:
    """End-to-end measurement of one workflow invocation."""

    workflow: str
    invocation_id: int
    mode: str  # "master-sp", "worker-sp", "monolithic"
    started_at: float
    finished_at: float = 0.0
    status: str = InvocationStatus.OK
    # Static execution time of the critical path's function nodes —
    # subtracted from e2e latency to obtain scheduling overhead (§2.3).
    critical_path_exec: float = 0.0
    cold_starts: int = 0
    retries: int = 0  # task attempts beyond the first, summed over tasks

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at

    @property
    def scheduling_overhead(self) -> float:
        return max(0.0, self.latency - self.critical_path_exec)


@dataclass(frozen=True)
class TransferEvent:
    """One data-plane storage operation (put or get)."""

    workflow: str
    invocation_id: int
    producer: str
    consumer: str  # "" for puts (not yet consumed)
    size: float
    duration: float
    phase: str  # "put" or "get"
    local: bool  # served by the node-local memory store


class MetricsCollector:
    """Accumulates records during a run and aggregates them afterwards."""

    def __init__(self) -> None:
        self.invocations: list[InvocationRecord] = []
        self.transfers: list[TransferEvent] = []
        # A SpanTracer attached by an engine when span tracing is on;
        # enables the measured latency decomposition below.
        self.spans = None

    # -- recording -------------------------------------------------------
    def record_invocation(self, record: InvocationRecord) -> None:
        self.invocations.append(record)

    def record_transfer(self, event: TransferEvent) -> None:
        self.transfers.append(event)

    # -- selection -------------------------------------------------------
    def invocations_of(self, workflow: str) -> list[InvocationRecord]:
        return [r for r in self.invocations if r.workflow == workflow]

    def completed(self, workflow: Optional[str] = None) -> list[InvocationRecord]:
        records = (
            self.invocations
            if workflow is None
            else self.invocations_of(workflow)
        )
        return [r for r in records if r.status == InvocationStatus.OK]

    def timeouts(self, workflow: Optional[str] = None) -> list[InvocationRecord]:
        records = (
            self.invocations
            if workflow is None
            else self.invocations_of(workflow)
        )
        return [r for r in records if r.status == InvocationStatus.TIMEOUT]

    def failures(self, workflow: Optional[str] = None) -> list[InvocationRecord]:
        records = (
            self.invocations
            if workflow is None
            else self.invocations_of(workflow)
        )
        return [r for r in records if r.status == InvocationStatus.FAILED]

    # -- aggregation ------------------------------------------------------
    def latencies(self, workflow: Optional[str] = None) -> list[float]:
        records = (
            self.invocations
            if workflow is None
            else self.invocations_of(workflow)
        )
        return [r.latency for r in records]

    def mean_latency(self, workflow: Optional[str] = None) -> float:
        values = self.latencies(workflow)
        if not values:
            raise ValueError("no invocations recorded")
        return sum(values) / len(values)

    def tail_latency(self, workflow: Optional[str] = None, q: float = 99.0) -> float:
        return percentile(self.latencies(workflow), q)

    def mean_scheduling_overhead(self, workflow: Optional[str] = None) -> float:
        records = self.completed(workflow)
        if not records:
            raise ValueError("no completed invocations recorded")
        return sum(r.scheduling_overhead for r in records) / len(records)

    # -- latency decomposition ---------------------------------------------
    def record_of(self, invocation_id: int) -> Optional[InvocationRecord]:
        for record in self.invocations:
            if record.invocation_id == invocation_id:
                return record
        return None

    def breakdown(self, invocation_id: int) -> dict:
        """Latency decomposition of one invocation.

        With a span tracer attached (``self.spans``), sweeps the
        invocation's spans over its ``[started_at, finished_at]`` window
        so the returned components — ``execute``, ``cold_start``,
        ``transfer``, ``queue_wait``, ``sync``, ``engine`` — sum to the
        end-to-end latency exactly (``measured=True``).  Without spans
        it falls back to the paper's §2.3 static subtraction: the
        critical path's execution time is ``execute`` and everything
        else is ``engine`` (``measured=False``).
        """
        record = self.record_of(invocation_id)
        if record is None:
            raise KeyError(f"unknown invocation {invocation_id!r}")
        e2e = record.latency
        spans = self.spans
        if spans is not None and getattr(spans, "enabled", False):
            inv_spans = spans.spans_of(invocation_id)
            if inv_spans:
                parts = decompose(
                    inv_spans, (record.started_at, record.finished_at)
                )
                parts["e2e"] = e2e
                parts["measured"] = True
                return parts
        parts = dict.fromkeys(BREAKDOWN_COMPONENTS, 0.0)
        parts["execute"] = min(record.critical_path_exec, e2e)
        parts["engine"] = e2e - parts["execute"]
        parts["e2e"] = e2e
        parts["measured"] = False
        return parts

    def mean_breakdown(self, workflow: Optional[str] = None) -> dict:
        """Per-component means over all completed invocations."""
        records = self.completed(workflow)
        if not records:
            raise ValueError("no completed invocations recorded")
        totals = dict.fromkeys((*BREAKDOWN_COMPONENTS, "e2e"), 0.0)
        for record in records:
            parts = self.breakdown(record.invocation_id)
            for key in totals:
                totals[key] += parts[key]
        return {key: value / len(records) for key, value in totals.items()}

    # -- data movement -----------------------------------------------------
    def transfers_of(self, workflow: str, invocation_id: Optional[int] = None):
        return [
            t
            for t in self.transfers
            if t.workflow == workflow
            and (invocation_id is None or t.invocation_id == invocation_id)
        ]

    def data_moved(
        self, workflow: str, invocation_id: Optional[int] = None
    ) -> float:
        """Bytes through the storage layer (puts + gets)."""
        return sum(t.size for t in self.transfers_of(workflow, invocation_id))

    def remote_data_moved(
        self, workflow: str, invocation_id: Optional[int] = None
    ) -> float:
        return sum(
            t.size
            for t in self.transfers_of(workflow, invocation_id)
            if not t.local
        )

    def transfer_latency(
        self, workflow: str, invocation_id: Optional[int] = None
    ) -> float:
        """Total data-movement latency over all edges (Table 4 metric)."""
        return sum(
            t.duration for t in self.transfers_of(workflow, invocation_id)
        )

    def mean_transfer_latency_per_invocation(self, workflow: str) -> float:
        ids = {t.invocation_id for t in self.transfers_of(workflow)}
        if not ids:
            return 0.0
        return sum(
            self.transfer_latency(workflow, i) for i in ids
        ) / len(ids)

    def local_fraction(self, workflow: str) -> float:
        """Fraction of storage bytes served locally (FaaStore hit rate)."""
        events = self.transfers_of(workflow)
        total = sum(t.size for t in events)
        if total == 0:
            return 0.0
        return sum(t.size for t in events if t.local) / total

    def clear(self) -> None:
        self.invocations.clear()
        self.transfers.clear()

"""Discrete-event cluster simulation substrate.

Everything FaaSFlow runs on: the event kernel, synchronization
primitives, the fluid network model, node resources, container
lifecycle, storage backends, and cluster assembly.
"""

from .cluster import GB, Cluster, ClusterConfig, Node, NodeConfig
from .container import Container, ContainerPool, ContainerSpec, ContainerState
from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .network import KB, MB, NIC, Network, NetworkConfig, TransferRecord
from .sched import (
    SCHEDULERS,
    HeapScheduler,
    Scheduler,
    WheelScheduler,
    make_scheduler,
    resolve_scheduler_name,
    set_default_scheduler,
)
from .resources import (
    CPUAllocator,
    MemoryAccount,
    OutOfMemoryError,
    UsageSampler,
)
from .shard import (
    DEFAULT_LOOKAHEAD,
    ShardAPI,
    ShardCoordinator,
    partition_nodes,
    run_network_sharded,
    run_network_single,
    run_workflow_cells,
)
from .storage import KeyNotFoundError, LocalMemStore, RemoteKVStore, StorageStats
from .sync import Level, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFAULT_LOOKAHEAD",
    "ShardAPI",
    "ShardCoordinator",
    "partition_nodes",
    "run_network_sharded",
    "run_network_single",
    "run_workflow_cells",
    "Cluster",
    "ClusterConfig",
    "Container",
    "ContainerPool",
    "ContainerSpec",
    "ContainerState",
    "CPUAllocator",
    "Environment",
    "Event",
    "GB",
    "Interrupt",
    "KB",
    "KeyNotFoundError",
    "Level",
    "LocalMemStore",
    "MB",
    "MemoryAccount",
    "Network",
    "NetworkConfig",
    "NIC",
    "Node",
    "NodeConfig",
    "OutOfMemoryError",
    "Process",
    "RemoteKVStore",
    "Resource",
    "SCHEDULERS",
    "Scheduler",
    "HeapScheduler",
    "WheelScheduler",
    "make_scheduler",
    "resolve_scheduler_name",
    "set_default_scheduler",
    "SimulationError",
    "StopProcess",
    "StorageStats",
    "Store",
    "Timeout",
    "TransferRecord",
    "UsageSampler",
]

"""SLO tracker tests: attainment, error/burn rates, target matching.

Synthetic snapshots are built through a real :class:`MetricsRegistry`
emitting the same ``workflow.latency`` / ``workflow.invocations``
series the engines produce, so these tests exercise the exact metric
schema the trackers consume in production.
"""

import json

import pytest

from repro.obs.slo import SLOReport, SLOTarget, SLOTracker, load_targets
from repro.obs.telemetry import MetricsRegistry


def snapshot_for(latencies, errors=0, tenant="default", workflow="wf"):
    """Engine-shaped snapshot: latency histogram + status counters."""
    reg = MetricsRegistry()
    labels = dict(tenant=tenant, workflow=workflow, engine="worker-sp")
    for latency in latencies:
        reg.observe("workflow.latency", latency, **labels)
        reg.inc("workflow.invocations", 1.0, status="ok", **labels)
    for _ in range(errors):
        reg.observe("workflow.latency", latencies[-1], **labels)
        reg.inc("workflow.invocations", 1.0, status="failed", **labels)
    return reg.snapshot()


class TestSLOTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(latency_target=0.0)
        with pytest.raises(ValueError):
            SLOTarget(latency_target=1.0, objective=0.0)
        with pytest.raises(ValueError):
            SLOTarget(latency_target=1.0, error_budget=1.0)

    def test_allowed_miss_rate(self):
        target = SLOTarget(latency_target=1.0, objective=95.0,
                           error_budget=0.01)
        assert target.allowed_miss_rate == pytest.approx(0.06)

    def test_wildcard_matching_and_specificity(self):
        wild = SLOTarget(latency_target=1.0)
        tenant_only = SLOTarget(latency_target=2.0, tenant="acme")
        exact = SLOTarget(latency_target=3.0, tenant="acme", workflow="wf")
        assert wild.matches("x", "y") and wild.specificity() == 0
        assert tenant_only.matches("acme", "anything")
        assert not tenant_only.matches("other", "anything")
        assert exact.specificity() == 2
        tracker = SLOTracker([wild, tenant_only, exact])
        assert tracker.target_for("acme", "wf") is exact
        assert tracker.target_for("acme", "other") is tenant_only
        assert tracker.target_for("other", "other") is wild


class TestSLOTrackerEvaluate:
    def test_all_within_target(self):
        tracker = SLOTracker([SLOTarget(latency_target=10.0)])
        (report,) = tracker.evaluate(snapshot_for([1.0, 2.0, 3.0]))
        assert report.invocations == 3
        assert report.errors == 0
        assert report.attainment == 1.0
        assert report.miss_rate == 0.0
        assert report.burn_rate == 0.0
        assert report.met

    def test_latency_misses_burn_budget(self):
        # 2 of 10 over target = 20% miss vs 6% allowed -> burning.
        latencies = [0.1] * 8 + [100.0, 100.0]
        tracker = SLOTracker(
            [SLOTarget(latency_target=1.0, objective=95.0,
                       error_budget=0.01)]
        )
        (report,) = tracker.evaluate(snapshot_for(latencies))
        assert report.invocations == 10
        assert report.attainment == pytest.approx(0.8)
        assert report.miss_rate == pytest.approx(0.2)
        assert report.burn_rate == pytest.approx(0.2 / 0.06)
        assert not report.met

    def test_errors_counted(self):
        tracker = SLOTracker([SLOTarget(latency_target=10.0)])
        (report,) = tracker.evaluate(snapshot_for([0.5] * 8, errors=2))
        assert report.invocations == 10
        assert report.errors == 2
        assert report.error_rate == pytest.approx(0.2)
        assert report.miss_rate >= report.error_rate - 1e-12
        assert not report.met

    def test_pair_without_target_skipped(self):
        tracker = SLOTracker(
            [SLOTarget(latency_target=1.0, tenant="someone-else")]
        )
        assert tracker.evaluate(snapshot_for([0.5])) == []

    def test_engine_splits_merge(self):
        # The same pair reported by both engines merges into one row.
        reg = MetricsRegistry()
        for engine in ("worker-sp", "master-sp"):
            labels = dict(tenant="default", workflow="wf", engine=engine)
            reg.observe("workflow.latency", 0.5, **labels)
            reg.inc("workflow.invocations", 1.0, status="ok", **labels)
        tracker = SLOTracker([SLOTarget(latency_target=1.0)])
        (report,) = tracker.evaluate(reg.snapshot())
        assert report.invocations == 2

    def test_report_to_dict_roundtrips_json(self):
        tracker = SLOTracker([SLOTarget(latency_target=1.0)])
        (report,) = tracker.evaluate(snapshot_for([0.5, 2.0]))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["invocations"] == 2
        assert data["met"] == report.met

    def test_pairs_discovered_from_snapshot(self):
        reg = MetricsRegistry()
        for tenant, wf in [("a", "w1"), ("a", "w2"), ("b", "w1")]:
            reg.observe(
                "workflow.latency", 0.5,
                tenant=tenant, workflow=wf, engine="worker-sp",
            )
        assert SLOTracker.pairs(reg.snapshot()) == [
            ("a", "w1"), ("a", "w2"), ("b", "w1"),
        ]


class TestLoadTargets:
    def test_list_form(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps([
            {"latency_target": 2.0},
            {"latency_target": 1.0, "tenant": "acme", "workflow": "wf",
             "objective": 99.0, "error_budget": 0.0},
        ]))
        targets = load_targets(path)
        assert len(targets) == 2
        assert targets[0].tenant is None
        assert targets[1].objective == 99.0

    def test_dict_form(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(
            {"targets": [{"latency_target": 3.0, "tenant": "t"}]}
        ))
        (target,) = load_targets(path)
        assert target.tenant == "t" and target.latency_target == 3.0


class TestEndToEnd:
    def test_real_run_produces_reports(self):
        from repro.runner import run_workflow

        from ..core.conftest import linear_dag

        summary = run_workflow(
            linear_dag(name="slotest", n=3),
            invocations=3, workers=3,
            collect_telemetry=True, tenant="acme",
        )
        tracker = SLOTracker([SLOTarget(latency_target=1e6)])
        reports = tracker.evaluate(summary.telemetry)
        assert [
            (r.tenant, r.workflow, r.invocations) for r in reports
        ] == [("acme", "slotest", 3)]
        assert reports[0].met


class TestTargetTieBreak:
    """Satellite: target_for must be deterministic under ties — tenant
    scope beats workflow scope at equal specificity, and otherwise the
    first-declared target wins regardless of registration order."""

    def test_tenant_beats_workflow_at_equal_specificity(self):
        tenant_scoped = SLOTarget(latency_target=1.0, tenant="acme")
        workflow_scoped = SLOTarget(latency_target=2.0, workflow="genome")
        forward = SLOTracker([tenant_scoped, workflow_scoped])
        reverse = SLOTracker([workflow_scoped, tenant_scoped])
        assert forward.target_for("acme", "genome") is tenant_scoped
        assert reverse.target_for("acme", "genome") is tenant_scoped

    def test_equal_score_keeps_first_declared(self):
        first = SLOTarget(latency_target=1.0, tenant="acme")
        second = SLOTarget(latency_target=2.0, tenant="acme")
        tracker = SLOTracker([first, second])
        assert tracker.target_for("acme", "anything") is first

    def test_exact_pair_still_beats_tenant_scope(self):
        pair = SLOTarget(latency_target=1.0, tenant="acme", workflow="genome")
        tenant_scoped = SLOTarget(latency_target=2.0, tenant="acme")
        tracker = SLOTracker([tenant_scoped, pair])
        assert tracker.target_for("acme", "genome") is pair

    def test_wildcard_default_still_found(self):
        default = SLOTarget(latency_target=9.0)
        tracker = SLOTracker(
            [SLOTarget(latency_target=1.0, tenant="acme"), default]
        )
        assert tracker.target_for("other", "genome") is default

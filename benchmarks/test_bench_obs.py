"""Telemetry-overhead A/B bench: instrumented engines vs NullRegistry.

Runs the same engine workload (a spread of realworld + synthetic cells
through ``run_workflow_cells``) twice over:

- **off** — the default ``NULL_TELEMETRY`` path: every producer holds
  the null registry and pays one ``enabled`` attribute check per
  would-be emit;
- **on** — ``collect_telemetry=True``: a ``MetricsRegistry`` on the
  simulated clock receives every engine/runtime/faastore/network/
  container emit and each cell ships a full snapshot.

The headline number is the instrumented-over-off wall-clock ratio
(best-of rounds on both sides); CI gates on ``overhead_ratio`` staying
under ``_MAX_OVERHEAD_RATIO``.  The bench also re-asserts the sharded
merge contract — per-cell snapshots merged in cell order at S=2 must be
bit-identical to the shards=1 run — so a determinism regression
invalidates the bench, not just a test.

Run directly (``python benchmarks/test_bench_obs.py``) to refresh the
committed ``BENCH_obs.json``; ``--quick`` is the CI smoke variant
(fewer invocations, one round, same gates).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.obs.telemetry import merge_snapshots
from repro.sim.shard import make_workflow_cell, run_workflow_cells

_HERE = Path(__file__).resolve().parent
_ROUNDS = 3
# Acceptance gate: the instrumented run may cost at most this multiple
# of the zero-cost-off run's wall clock.  Generous on purpose — CI
# machines are noisy and the quick workload is small — while still
# catching an accidental hot-path regression (an unguarded emit or a
# per-event allocation shows up as 3-10x, not 1.x).
_MAX_OVERHEAD_RATIO = 2.0
_INVOCATIONS = 6
_QUICK_INVOCATIONS = 2

_WORKLOADS = [
    (("layered_random", {"seed": 3}), "worker", 13, 3),
    ("cycles", "worker", 7, 3),
    ("video-ffmpeg", "worker", 29, 4),
    ("genome", "master", 17, 4),
]


def _cells(invocations: int, telemetry: bool) -> list[dict]:
    extra = {"collect_telemetry": True} if telemetry else {}
    return [
        make_workflow_cell(
            workload, engine=engine, seed=seed,
            invocations=invocations, workers=workers, **extra,
        )
        for workload, engine, seed, workers in _WORKLOADS
    ]


def _best_of(fn, rounds: int) -> float:
    wall = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        wall = min(wall, time.perf_counter() - start)
    return wall


def _canon(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True)


def _measure(invocations: int, rounds: int = _ROUNDS) -> dict:
    off_cells = _cells(invocations, telemetry=False)
    on_cells = _cells(invocations, telemetry=True)
    total_invocations = invocations * len(_WORKLOADS)

    # Merge contract first: cells sharded at S=2 must merge to the exact
    # snapshot the serial layout produces.  A failure here means the
    # overhead number would be measuring a broken subsystem.
    serial = run_workflow_cells(on_cells, shards=1)
    sharded = run_workflow_cells(on_cells, shards=2)
    merged_serial = merge_snapshots([r["telemetry"] for r in serial])
    merged_sharded = merge_snapshots([r["telemetry"] for r in sharded])
    if _canon(merged_sharded) != _canon(merged_serial):
        raise AssertionError(
            "sharded telemetry merge diverged from the serial run"
        )
    series = len(merged_serial["metrics"])

    off_wall = _best_of(
        lambda: run_workflow_cells(off_cells, shards=1), rounds
    )
    on_wall = _best_of(
        lambda: run_workflow_cells(on_cells, shards=1), rounds
    )
    return {
        "invocations_per_cell": invocations,
        "cells": len(_WORKLOADS),
        "total_invocations": total_invocations,
        "metric_series": series,
        "off_wall_seconds": round(off_wall, 6),
        "on_wall_seconds": round(on_wall, 6),
        "off_invocations_per_sec": round(total_invocations / off_wall, 2),
        "on_invocations_per_sec": round(total_invocations / on_wall, 2),
        "overhead_ratio": round(on_wall / off_wall, 4),
        "sharded_merge_identical": True,
    }


def test_telemetry_overhead_bounded(benchmark):
    result = benchmark.pedantic(
        lambda: _measure(_QUICK_INVOCATIONS, rounds=1),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result)
    assert result["sharded_merge_identical"]
    assert result["metric_series"] > 0
    assert result["overhead_ratio"] < _MAX_OVERHEAD_RATIO


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    invocations = _QUICK_INVOCATIONS if quick else _INVOCATIONS
    rounds = 1 if quick else _ROUNDS
    result = _measure(invocations, rounds=rounds)
    payload = {
        "bench": "engine wall clock with streaming telemetry on vs off "
        f"(best of {rounds} round(s) per side)",
        "baseline": "NULL_TELEMETRY zero-cost-off path (one enabled-check "
        "per would-be emit)",
        "instrumented": "MetricsRegistry on the simulated clock: engines, "
        "runtime, faastore, network, and containers all emitting",
        "workload": "run_workflow_cells over layered_random/cycles/"
        "video-ffmpeg/genome cells, both engine modes",
        "invariant": "S=2 sharded per-cell snapshots merged in cell order "
        "are bit-identical to the shards=1 run",
        "max_overhead_ratio": _MAX_OVERHEAD_RATIO,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        **result,
    }
    out = _HERE.parent / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")
    if payload["overhead_ratio"] >= _MAX_OVERHEAD_RATIO:
        print(
            f"WARNING: telemetry overhead ratio "
            f"{payload['overhead_ratio']} exceeds bound "
            f"{_MAX_OVERHEAD_RATIO}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

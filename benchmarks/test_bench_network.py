"""Cluster-scale network-model regression bench vs the frozen seed.

``_seed_network.py`` is a verbatim copy of ``sim/network.py`` as it
stood before the scaling work (flow aggregation into route classes,
incremental component-local rebalancing, timer cancellation, the
water-filling level cache).  Both modules are driven by the byte-exact
same workload — ``repro.experiments.fig_scale.drive_network``, a seeded
mix of worker-group transfers with a per-group collector hotspot — and
must produce **bit-identical** transfer records; the bench then compares
wall-clock/events-per-second across a nodes x concurrent-flows sweep.

Run directly (``python benchmarks/test_bench_network.py``) to refresh
the committed ``BENCH_network.json``; pass ``--quick`` for the small
sweep the CI smoke job uses.
"""

from __future__ import annotations

import importlib.util
import json
import math
import os
import sys
import time
from pathlib import Path

from repro.experiments.fig_scale import drive_network
from repro.sim import network as new_network

_HERE = Path(__file__).resolve().parent
_ROUNDS = 3
# High-contention sweep points (>= 64 nodes or >= 500 concurrent flows)
# must hold this geometric-mean speedup; every 8-node point must not
# regress below 1.0x.
_TARGET_HIGH_GEOMEAN = 3.0
_CELLS = [
    (8, 10),
    (8, 100),
    (8, 1000),
    (32, 200),
    (64, 500),
    (128, 1000),
]
_QUICK_CELLS = [
    (8, 10),
    (8, 100),
    (16, 100),
    (32, 200),
]


def _load_seed_network():
    spec = importlib.util.spec_from_file_location(
        "faasflow_seed_network", _HERE / "_seed_network.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Dataclass creation reads sys.modules[cls.__module__] during
    # exec_module, so the module must be registered first.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _is_high_contention(nodes: int, flows: int) -> bool:
    return nodes >= 64 or flows >= 500


def _measure(cells, rounds: int = _ROUNDS):
    """Per-cell best-of-``rounds`` wall clock, interleaved A/B.

    Round one of every cell also collects transfer records from both
    modules and asserts they are tuple-identical — the bench is invalid
    if the optimized model drifts from the reference by a single bit.
    """
    seed_mod = _load_seed_network()
    results = []
    for nodes, flows in cells:
        reference = drive_network(seed_mod, nodes, flows, collect_records=True)
        candidate = drive_network(new_network, nodes, flows, collect_records=True)
        if reference["records"] != candidate["records"]:
            raise AssertionError(
                f"optimized network model diverged from the seed at "
                f"nodes={nodes} flows={flows}"
            )
        seed_wall = float("inf")
        new_wall = float("inf")
        # Sub-10ms cells are scheduler-noise dominated: give them enough
        # rounds that min-of-rounds converges to the true cost.
        if reference["wall_seconds"] < 0.010:
            cell_rounds = max(rounds, 25)
        elif reference["wall_seconds"] < 0.100:
            cell_rounds = max(rounds, 8)
        else:
            cell_rounds = rounds
        for _ in range(cell_rounds):
            seed_wall = min(
                seed_wall, drive_network(seed_mod, nodes, flows)["wall_seconds"]
            )
            new_wall = min(
                new_wall, drive_network(new_network, nodes, flows)["wall_seconds"]
            )
        events = reference["events"]
        results.append(
            {
                "nodes": nodes,
                "flows": flows,
                "events": events,
                "seed_wall_seconds": round(seed_wall, 6),
                "optimized_wall_seconds": round(new_wall, 6),
                "seed_events_per_sec": round(events / seed_wall),
                "optimized_events_per_sec": round(events / new_wall),
                "speedup": round(seed_wall / new_wall, 3),
                "high_contention": _is_high_contention(nodes, flows),
                "records_identical": True,
            }
        )
    return results


def _geomean(values) -> float:
    values = list(values)
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _aggregate(results) -> dict:
    high = [r["speedup"] for r in results if r["high_contention"]]
    small = [r["speedup"] for r in results if r["nodes"] == 8]
    return {
        "geomean_speedup": round(_geomean(r["speedup"] for r in results), 3),
        "geomean_high_contention_speedup": round(_geomean(high), 3),
        "min_8_node_speedup": round(min(small), 3) if small else None,
    }


def test_network_speedup_vs_seed(benchmark):
    def run_ab():
        results = _measure(_QUICK_CELLS, rounds=2)
        return results, _aggregate(results)

    results, aggregate = benchmark.pedantic(run_ab, rounds=1, iterations=1)
    benchmark.extra_info["cells"] = results
    benchmark.extra_info.update(aggregate)
    assert all(r["records_identical"] for r in results)
    assert aggregate["geomean_speedup"] >= 1.0, (
        f"network model slower than the frozen seed: {aggregate} {results}"
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    cells = _QUICK_CELLS if quick else _CELLS
    rounds = 2 if quick else _ROUNDS
    results = _measure(cells, rounds=rounds)
    aggregate = _aggregate(results)
    payload = {
        "bench": "fluid network model at cluster scale (wall-clock per "
        f"sweep cell, best of {rounds} interleaved rounds)",
        "baseline": "benchmarks/_seed_network.py (pre-optimization model)",
        "workload": "fig_scale.drive_network: worker-group transfers "
        "with a per-group collector hotspot (group_size=8)",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "cells": results,
        **aggregate,
    }
    out = _HERE.parent / "BENCH_network.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")
    if not quick and (
        payload["geomean_high_contention_speedup"] < _TARGET_HIGH_GEOMEAN
        or (payload["min_8_node_speedup"] or 1.0) < 1.0
    ):
        print("WARNING: speedup targets not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

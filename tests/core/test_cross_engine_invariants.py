"""Cross-engine invariants: MasterSP, WorkerSP, and DataflowSP.

The three engines differ in *when* and *where* things happen — master
loop vs serialized worker loop vs parallel token handlers — but they
must agree on *what* happened: the same functions execute exactly once,
the FaaStore ends every run drained, the latency decomposition sums
exactly, and every one of those facts is bit-identical across kernel
scheduler implementations and shard counts.
"""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    DataflowSystem,
    EngineConfig,
    FaaSFlowSystem,
    HyperFlowServerlessSystem,
    Tracer,
    hash_partition,
)
from repro.metrics import InvocationStatus
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

from .conftest import MB, fanout_dag

ENGINES = ("master", "worker", "dataflow")
SCHEDULERS = ("heap", "wheel")
SYSTEM_CLASSES = {
    "worker": FaaSFlowSystem,
    "dataflow": DataflowSystem,
}


def drain(env):
    env.run(until=env.now)


def _run(engine, scheduler="heap", invocations=3, ship_data=True):
    """One full run of the reference fan-out on one engine; every
    engine sees the same DAG, the same hash placement, the same
    closed-loop client, and the same invocation-id range."""
    from repro.core.state import reset_invocation_ids

    reset_invocation_ids(1)
    env = Environment(scheduler=scheduler)
    cluster = Cluster(
        env,
        ClusterConfig(
            workers=3,
            container=ContainerSpec(cold_start_time=0.1),
            storage_bandwidth=50 * MB,
        ),
    )
    tracer = Tracer()
    config = EngineConfig(ship_data=ship_data)
    dag = fanout_dag(branches=3)
    placement = hash_partition(dag, cluster.worker_names())
    if engine == "master":
        system = HyperFlowServerlessSystem(cluster, config, tracer=tracer)
        system.register(dag, placement)
    else:
        system = SYSTEM_CLASSES[engine](cluster, config, tracer=tracer)
        system.deploy(
            dag,
            placement,
            quotas={w.name: 64 * MB for w in cluster.workers},
        )
    records = run_closed_loop(system, dag.name, invocations)
    drain(env)
    return env, cluster, system, tracer, records, dag


class TestSameWorkEverywhere:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_every_engine_executes_the_same_functions(self, scheduler):
        expected = None
        for engine in ENGINES:
            _, _, _, tracer, records, dag = _run(engine, scheduler)
            assert all(r.status == InvocationStatus.OK for r in records)
            executed = {
                r.invocation_id: tracer.execution_counts(r.invocation_id)
                for r in records
            }
            for counts in executed.values():
                assert counts == {name: 1 for name in dag.node_names}
            if expected is None:
                expected = set(executed)
            else:
                # Same client, same id allocator: the engines complete
                # the exact same invocation ids.
                assert set(executed) == expected

    @pytest.mark.parametrize("engine", ["worker", "dataflow"])
    def test_faastore_final_state_identical_and_empty(self, engine):
        """Invocation cleanup must drain every node-local store — eager
        pushes included — so both FaaStore engines end byte-identical."""
        _, cluster, system, _, records, _ = _run(engine)
        assert all(r.status == InvocationStatus.OK for r in records)
        for worker in cluster.workers:
            assert worker.memstore.used == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_live_processes_after_run(self, engine):
        _, cluster, system, _, _, _ = _run(engine)
        assert system.registry.live_count == 0
        for worker in cluster.workers:
            assert worker.cpu.busy == 0


class TestExactSumBreakdown:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_components_sum_to_e2e(self, engine):
        from repro.obs import SpanTracer

        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=3,
                container=ContainerSpec(cold_start_time=0.1),
                storage_bandwidth=50 * MB,
            ),
        )
        # Spans must precede system construction (engines snapshot
        # cluster.spans when built).
        cluster.install_spans(SpanTracer(env))
        dag = fanout_dag(branches=3)
        placement = hash_partition(dag, cluster.worker_names())
        config = EngineConfig(ship_data=True)
        if engine == "master":
            system = HyperFlowServerlessSystem(cluster, config)
            system.register(dag, placement)
        else:
            system = SYSTEM_CLASSES[engine](cluster, config)
            system.deploy(
                dag,
                placement,
                quotas={w.name: 64 * MB for w in cluster.workers},
            )
        records = run_closed_loop(system, dag.name, 3)
        drain(env)
        for record in records:
            parts = system.metrics.breakdown(record.invocation_id)
            assert parts["measured"] is True
            total = sum(
                parts[k]
                for k in (
                    "execute", "cold_start", "transfer",
                    "queue_wait", "sync", "engine",
                )
            )
            assert total == pytest.approx(parts["e2e"], abs=1e-9)


class TestDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_across_schedulers(self, engine):
        def fingerprint(scheduler):
            _, _, _, _, records, _ = _run(engine, scheduler)
            return [
                (r.invocation_id, r.started_at, r.finished_at, r.status,
                 r.cold_starts, r.retries)
                for r in records
            ]

        assert fingerprint("heap") == fingerprint("wheel")

    def test_dataflow_cells_bit_identical_across_shard_counts(self):
        """The --shards path must not perturb DataflowSP runs: the same
        cells on 1 and 2 shard workers return identical records."""
        from repro.sim.shard import make_workflow_cell, run_workflow_cells

        cells = [
            make_workflow_cell(
                "cycles",
                engine="dataflow",
                seed=seed,
                invocations=2,
                workers=3,
                feedback=False,
            )
            for seed in (7, 8)
        ]
        serial = run_workflow_cells(cells, shards=1)
        sharded = run_workflow_cells(cells, shards=2)
        assert serial == sharded
        assert all(out["completed"] == out["invocations"] for out in serial)

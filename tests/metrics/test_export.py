"""Tests for CSV export/import of metrics and experiment results."""

import pytest

from repro.metrics import InvocationRecord, MetricsCollector, TransferEvent
from repro.metrics.export import (
    export_metrics,
    read_invocations_csv,
    read_transfers_csv,
    write_invocations_csv,
    write_result_csv,
    write_transfers_csv,
)

MB = 1024.0 * 1024.0


def populated_collector():
    collector = MetricsCollector()
    for i in range(3):
        collector.record_invocation(
            InvocationRecord(
                workflow="w",
                invocation_id=i,
                mode="worker-sp",
                started_at=float(i),
                finished_at=float(i) + 1.5,
                status="ok" if i < 2 else "timeout",
                critical_path_exec=0.4,
                cold_starts=i,
            )
        )
    collector.record_transfer(
        TransferEvent("w", 0, "a", "b", 2 * MB, 0.25, "get", True)
    )
    collector.record_transfer(
        TransferEvent("w", 1, "a", "", 2 * MB, 0.5, "put", False)
    )
    return collector


class TestRoundTrip:
    def test_invocations_round_trip(self, tmp_path):
        collector = populated_collector()
        path = tmp_path / "inv.csv"
        assert write_invocations_csv(collector, path) == 3
        loaded = read_invocations_csv(path)
        assert len(loaded) == 3
        assert loaded[0].latency == pytest.approx(1.5)
        assert loaded[2].status == "timeout"
        assert loaded[1].cold_starts == 1

    def test_transfers_round_trip(self, tmp_path):
        collector = populated_collector()
        path = tmp_path / "tr.csv"
        assert write_transfers_csv(collector, path) == 2
        loaded = read_transfers_csv(path)
        assert loaded[0].local is True
        assert loaded[1].local is False
        assert loaded[0].size == pytest.approx(2 * MB)

    def test_loaded_metrics_aggregate_identically(self, tmp_path):
        collector = populated_collector()
        paths = export_metrics(collector, tmp_path, prefix="test")
        clone = MetricsCollector()
        for record in read_invocations_csv(paths["invocations"]):
            clone.record_invocation(record)
        for event in read_transfers_csv(paths["transfers"]):
            clone.record_transfer(event)
        assert clone.mean_latency("w") == pytest.approx(
            collector.mean_latency("w")
        )
        assert clone.data_moved("w") == pytest.approx(collector.data_moved("w"))
        assert clone.local_fraction("w") == pytest.approx(
            collector.local_fraction("w")
        )

    def test_export_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        paths = export_metrics(populated_collector(), target)
        assert paths["invocations"].exists()
        assert paths["transfers"].exists()


class TestBoolParsing:
    def test_accepted_spellings(self, tmp_path):
        from repro.metrics.export import _parse_bool

        for text in ("True", "true", "TRUE", "1", "yes", "Y", "t", " true "):
            assert _parse_bool(text) is True
        for text in ("False", "false", "0", "no", "N", "f", ""):
            assert _parse_bool(text) is False

    def test_junk_raises_instead_of_collapsing(self):
        from repro.metrics.export import _parse_bool

        with pytest.raises(ValueError):
            _parse_bool("maybe")
        with pytest.raises(ValueError):
            _parse_bool("2")

    def test_hand_edited_csv_round_trips(self, tmp_path):
        collector = populated_collector()
        path = tmp_path / "tr.csv"
        write_transfers_csv(collector, path)
        # A hand-edited file may use lowercase/numeric booleans.
        text = path.read_text().replace("True", "true").replace("False", "0")
        path.write_text(text)
        loaded = read_transfers_csv(path)
        assert loaded[0].local is True
        assert loaded[1].local is False


class TestResultCSV:
    def test_result_table_written_with_notes(self, tmp_path):
        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            experiment="figX",
            title="demo",
            headers=["benchmark", "value"],
            rows=[["Cyc", 1.5], ["Epi", 2.5]],
            notes=["calibrated against the paper"],
        )
        path = tmp_path / "figX.csv"
        assert write_result_csv(result, path) == 2
        text = path.read_text()
        assert text.startswith("# calibrated against the paper")
        assert "benchmark,value" in text
        assert "Cyc,1.5" in text

    def test_multiline_note_stays_commented(self, tmp_path):
        import csv

        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            experiment="figX",
            title="demo",
            headers=["benchmark", "value"],
            rows=[["Cyc", 1.5]],
            notes=["first line\nsecond line", ""],
        )
        path = tmp_path / "figX.csv"
        write_result_csv(result, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "# first line"
        assert lines[1] == "# second line"
        assert lines[2] == "# "
        assert lines[3] == "benchmark,value"
        # The data region still parses: skip comments, read the table.
        with open(path) as handle:
            data = [l for l in handle if not l.startswith("#")]
        rows = list(csv.reader(data))
        assert rows == [["benchmark", "value"], ["Cyc", "1.5"]]


class TestCLIIntegration:
    def test_cli_csv_flag_writes_files(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["fig05", "--quick", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig05.csv").exists()

    def test_cli_chart_flag_renders(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig05", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar glyphs present


class TestMarkdownReport:
    def test_markdown_rendering(self):
        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            experiment="figX",
            title="demo",
            headers=["benchmark", "value"],
            rows=[["Cyc", 1.5]],
            notes=["a note"],
        )
        text = result.to_markdown()
        assert text.startswith("## figX — demo")
        assert "| benchmark | value |" in text
        assert "| Cyc | 1.50 |" in text
        assert "> a note" in text

    def test_cli_markdown_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "report.md"
        assert main(["fig05", "--quick", "--markdown", str(target)]) == 0
        assert target.read_text().startswith("## fig05")

"""Fig. 4 — scheduling overhead of MasterSP (HyperFlow-serverless).

Replays the paper's §2.3 motivation experiment: each benchmark runs
under a closed-loop client with inputs pre-packed in the container
image (no data shipping), and the scheduling overhead is the
end-to-end latency minus the execution time of the critical path's
function nodes.  The paper reports ≈712 ms average for the 50-node
scientific workflows and ≈181 ms for the real-world applications.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, REAL_WORLD, SCIENTIFIC, build
from .common import (
    ExperimentResult,
    make_cluster,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]


def run(invocations: int = 50, benchmarks: list[str] | None = None) -> ExperimentResult:
    """One closed-loop run per benchmark on a fresh MasterSP cluster."""
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    overhead_by_category: dict[str, list[float]] = {}
    for name in names:
        cluster = make_cluster()
        system = make_hyperflow(cluster, ship_data=False)
        dag = build(name)
        register_hyperflow(system, dag)
        records = run_closed_loop(system, name, invocations)
        # Skip the cold-start invocation like the paper's 1000-run average.
        warm = records[1:] or records
        overhead = sum(r.scheduling_overhead for r in warm) / len(warm) * 1000
        latency = sum(r.latency for r in warm) / len(warm) * 1000
        category = BENCHMARKS[name].category
        overhead_by_category.setdefault(category, []).append(overhead)
        rows.append(
            [BENCHMARKS[name].abbrev, category, round(overhead, 1), round(latency, 1)]
        )
    notes = []
    for category, label, paper in (
        ("scientific", "scientific avg overhead", 712.0),
        ("real-world", "real-world avg overhead", 181.3),
    ):
        values = overhead_by_category.get(category)
        if values:
            mean = sum(values) / len(values)
            notes.append(
                f"{label}: {mean:.1f} ms (paper: {paper:.1f} ms)"
            )
    return ExperimentResult(
        experiment="fig04",
        title="MasterSP scheduling overhead per benchmark (HyperFlow-serverless)",
        headers=["benchmark", "category", "sched overhead (ms)", "e2e latency (ms)"],
        rows=rows,
        notes=notes,
        data={"overhead_by_category": overhead_by_category},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

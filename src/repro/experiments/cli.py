"""Command-line entry point: ``faasflow-experiment <id> [--quick]``.

Runs one (or all) of the paper-reproduction experiments and prints the
regenerated table/series.  ``--quick`` shrinks invocation counts for a
fast smoke pass; the defaults match the settings EXPERIMENTS.md
records.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable

from ..parallel import add_jobs_argument

from . import (
    fig04_master_overhead,
    fig05_data_movement,
    fig11_sched_overhead,
    fig12_bandwidth_sweep,
    fig13_tail_latency,
    fig14_colocation,
    fig15_grouping,
    fig16_scheduler_scalability,
    fig_scale,
    sec57_component_overhead,
    sec6_memory_vs_network,
    ablations,
    ext_dataflow_overlap,
    ext_fault_resilience,
    ext_scale_serve,
)

__all__ = ["main", "EXPERIMENTS"]

# id -> (module runner, quick-mode kwargs)
EXPERIMENTS: dict[str, tuple[Callable, dict]] = {
    "fig04": (fig04_master_overhead.run, {"invocations": 5}),
    "fig05": (fig05_data_movement.run, {}),
    "fig11": (fig11_sched_overhead.run, {"invocations": 5}),
    "tab04": (None, {"invocations": 2}),  # resolved lazily below
    "fig12": (
        fig12_bandwidth_sweep.run,
        {"invocations": 8, "rates": (2.0, 6.0), "bandwidths": None},
    ),
    "fig13": (fig13_tail_latency.run, {"invocations": 10}),
    "fig14": (fig14_colocation.run, {"invocations": 3}),
    "fig15": (fig15_grouping.run, {}),
    "fig16": (fig16_scheduler_scalability.run, {"sizes": (10, 25, 50)}),
    "fig_scale": (fig_scale.run, {"nodes": (8, 16), "flows": (10, 50)}),
    "sec57": (
        sec57_component_overhead.run,
        {"worker_counts": (1, 5, 10), "invocations": 3},
    ),
    "sec6": (sec6_memory_vs_network.run, {"invocations": 8}),
    "ablations": (ablations.run, {"invocations": 2}),
    "dataflow": (
        ext_dataflow_overlap.run,
        {"invocations": 4, "benchmarks": ("genome",)},
    ),
    "faults": (ext_fault_resilience.run, {"invocations": 4}),
    "faults-nodes": (
        ext_fault_resilience.run_node_crashes,
        {"invocations": 3, "crashes": (1,), "degradations": 1},
    ),
    "faults-backoff": (
        ext_fault_resilience.run_backoff,
        {"invocations": 3, "bases": (0.0, 0.1)},
    ),
    "scale-serve": (
        ext_scale_serve.run,
        {"invocations": 20_000, "tenants": 4},
    ),
}


def _resolve(name: str) -> Callable:
    if name == "tab04":
        from . import tab04_transfer_latency

        return tab04_transfer_latency.run
    runner, _ = EXPERIMENTS[name]
    return runner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="faasflow-experiment",
        description="Regenerate a table/figure of the FaaSFlow paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small invocation counts for a fast smoke pass",
    )
    add_jobs_argument(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run shard-aware experiments (fig_scale) on N conservatively-"
        "synchronized shard processes; others ignore this flag",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each result's table to DIR/<id>.csv",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII bar chart of each result's first metric",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="write all results as a markdown report to FILE",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="record spans + resource samples for every cluster the "
        "experiments build and write trace bundles to DIR "
        "(serial runs only: --jobs children are not traced)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.25,
        metavar="SEC",
        help="resource-sampler cadence in simulated seconds (default 0.25)",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="DIR",
        default=None,
        help="collect a streaming metrics snapshot for every cluster the "
        "experiments build (and for fig_scale's network cells, sharded "
        "or not) and write *-telemetry.json files to DIR",
    )
    parser.add_argument(
        "--scheduler",
        choices=["heap", "wheel"],
        default=None,
        help="kernel event-queue implementation for every environment "
        "the experiments build, including --jobs and shard workers: "
        "heap (default) or wheel (faster on timer-heavy runs, "
        "bit-identical results)",
    )
    args = parser.parse_args(argv)
    if args.scheduler:
        # Process-wide default: every Environment this process (and its
        # worker children, which inherit the OS environment) constructs
        # resolves it.
        from ..sim import set_default_scheduler

        set_default_scheduler(args.scheduler)
    collector = None
    if args.trace_out or args.telemetry_out:
        from ..obs.context import TraceCollector, activate

        collector = TraceCollector(
            args.trace_out or args.telemetry_out,
            sample_interval=args.sample_interval,
            spans=bool(args.trace_out),
            telemetry=bool(args.telemetry_out),
            telemetry_directory=args.telemetry_out,
        )
        activate(collector)
    markdown_sections = []
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner = _resolve(name)
        if collector is not None:
            collector.set_label(name)
        _, quick_kwargs = EXPERIMENTS[name]
        kwargs = dict(quick_kwargs) if args.quick else {}
        kwargs = {k: v for k, v in kwargs.items() if v is not None}
        if name == "fig12" and args.quick:
            kwargs.setdefault("bandwidths", (25 * 1024 * 1024, 100 * 1024 * 1024))
        parameters = inspect.signature(runner).parameters
        if args.jobs != 1 and "jobs" in parameters:
            # Sweep-style experiments fan their independent cells out
            # across a process pool; the rest ignore --jobs.
            kwargs["jobs"] = args.jobs
        if args.shards != 1 and "shards" in parameters:
            kwargs["shards"] = args.shards
        if args.telemetry_out and "telemetry_out" in parameters:
            # Experiments that build their own sharded/network cells
            # (fig_scale) write their snapshots directly; the ambient
            # collector covers everything built through make_cluster.
            kwargs["telemetry_out"] = args.telemetry_out
        result = runner(**kwargs)
        print(result.format())
        if args.chart:
            from .charts import chart_for_result

            chart = chart_for_result(result)
            if chart:
                print()
                print(chart)
        if args.csv:
            from pathlib import Path

            from ..metrics.export import write_result_csv

            directory = Path(args.csv)
            directory.mkdir(parents=True, exist_ok=True)
            write_result_csv(result, directory / f"{name}.csv")
        if args.markdown:
            markdown_sections.append(result.to_markdown())
        print()
    if args.markdown and markdown_sections:
        from pathlib import Path

        Path(args.markdown).write_text("\n\n".join(markdown_sections) + "\n")
        print(f"markdown report written to {args.markdown}")
    if collector is not None:
        from ..obs.context import deactivate

        paths = collector.flush()
        deactivate()
        where = args.trace_out or args.telemetry_out
        print(
            f"trace bundles: {len(paths)} files in {where} "
            f"(inspect with faasflow-trace)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Unit tests for the Graph Scheduler (partitioning + feedback)."""

import pytest

from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    hash_partition,
    update_edge_weights,
)
from repro.metrics import MetricsCollector, TransferEvent
from repro.wdl import parse_workflow

from .conftest import MB, linear_dag


class TestHashPartition:
    def test_every_function_placed(self):
        dag = linear_dag(n=5)
        placement = hash_partition(dag, ["w0", "w1"])
        placement.validate_against(dag)

    def test_deterministic(self):
        dag = linear_dag(n=5)
        p1 = hash_partition(dag, ["w0", "w1"])
        p2 = hash_partition(dag, ["w0", "w1"])
        assert p1.assignment == p2.assignment

    def test_spreads_across_workers(self):
        dag = linear_dag(n=6)
        placement = hash_partition(dag, ["w0", "w1", "w2"])
        assert len(placement.workers()) == 3

    def test_empty_workers_rejected(self):
        with pytest.raises(ValueError):
            hash_partition(linear_dag(), [])


class TestScheduleIterations:
    def test_first_iteration_is_hash_based(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=5)
        placement, quotas, report = scheduler.schedule(dag)
        assert report.iteration == 1
        assert report.grouping is None
        assert len(placement.workers()) > 1  # hash spreads a 5-chain

    def test_second_iteration_runs_grouping(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=5)
        for edge in dag.edges:
            edge.weight = 0.5  # measured transmission latency
        scheduler.schedule(dag)
        placement, quotas, report = scheduler.schedule(dag)
        assert report.iteration == 2
        assert report.grouping is not None
        # All edges merge on an idle cluster: a chain lands on one node.
        assert len(placement.workers()) == 1

    def test_weightless_edges_are_not_grouped(self, cluster):
        """No measured transmission cost -> nothing to merge for."""
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=5)  # all edge weights zero
        _, _, report = scheduler.schedule(dag, force_grouping=True)
        assert len(report.grouping.groups) == 5

    def test_force_grouping_skips_bootstrap(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=4)
        _, _, report = scheduler.schedule(dag, force_grouping=True)
        assert report.grouping is not None

    def test_reports_accumulate_with_costs(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=4)
        scheduler.schedule(dag)
        scheduler.schedule(dag)
        assert len(scheduler.reports) == 2
        assert all(r.wall_time >= 0 for r in scheduler.reports)
        assert scheduler.reports[1].memory_peak > 0

    def test_quotas_follow_placement(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=3)
        placement, quotas, _ = scheduler.schedule(dag, force_grouping=True)
        assert set(quotas) <= set(cluster.worker_names())
        assert all(q >= 0 for q in quotas.values())

    def test_apply_quotas_pins_pools(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=3)
        _, quotas, _ = scheduler.schedule(dag, force_grouping=True)
        scheduler.apply_quotas(quotas)
        for worker in cluster.workers:
            assert worker.memstore.quota == pytest.approx(
                quotas.get(worker.name, 0.0)
            )


class TestContentionDeclaration:
    def test_declared_pairs_respected(self, cluster):
        scheduler = GraphScheduler(cluster)
        scheduler.declare_contention([("f0", "f1")])
        dag = linear_dag(n=3)
        placement, _, report = scheduler.schedule(dag, force_grouping=True)
        g = report.grouping
        assert g.group_of("f0") != g.group_of("f1")


class TestFeedback:
    def test_edge_weights_updated_from_measurements(self):
        dag = linear_dag(n=2, output_size=1 * MB)
        metrics = MetricsCollector()
        for duration in (0.5, 0.6, 0.7):
            metrics.record_transfer(
                TransferEvent(
                    workflow="lin", invocation_id=1, producer="f0",
                    consumer="f1", size=1 * MB, duration=duration,
                    phase="get", local=False,
                )
            )
        update_edge_weights(dag, metrics)
        weight = dag.edge("f0", "f1").weight
        assert weight == pytest.approx(0.698, rel=1e-2)  # p99 of gets

    def test_put_latency_added_to_weight(self):
        dag = linear_dag(n=2, output_size=1 * MB)
        metrics = MetricsCollector()
        metrics.record_transfer(
            TransferEvent("lin", 1, "f0", "f1", 1 * MB, 0.5, "get", False)
        )
        metrics.record_transfer(
            TransferEvent("lin", 1, "f0", "", 1 * MB, 0.3, "put", False)
        )
        update_edge_weights(dag, metrics)
        assert dag.edge("f0", "f1").weight == pytest.approx(0.8)

    def test_weights_map_through_virtual_nodes(self):
        dag = parse_workflow(
            """
name: par
steps:
  - task: head
    output_size: 1MB
  - parallel: p
    branches:
      - - task: a
      - - task: b
"""
        )
        metrics = MetricsCollector()
        metrics.record_transfer(
            TransferEvent("par", 1, "head", "a", 1 * MB, 0.9, "get", False)
        )
        update_edge_weights(dag, metrics)
        assert dag.edge("head", "p.start").weight == pytest.approx(0.9)
        assert dag.edge("p.start", "a").weight == pytest.approx(0.9)
        assert dag.edge("p.start", "b").weight == 0.0

    def test_foreign_workflow_measurements_ignored(self):
        dag = linear_dag(n=2)
        metrics = MetricsCollector()
        metrics.record_transfer(
            TransferEvent("other", 1, "f0", "f1", 1 * MB, 0.5, "get", False)
        )
        update_edge_weights(dag, metrics)
        assert dag.edge("f0", "f1").weight == 0.0

    def test_scale_feedback_applied(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=2)
        scheduler.observe_scale("f0", 3.0)
        scheduler.absorb_feedback(dag, MetricsCollector())
        assert dag.node("f0").scale == 3.0

    def test_negative_scale_rejected(self, cluster):
        with pytest.raises(ValueError):
            GraphScheduler(cluster).observe_scale("f", -1)

    def test_memory_observation_grows_quota(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = linear_dag(n=2)
        for node in dag.nodes:
            node.memory = 200 * MB
        _, before, _ = scheduler.schedule(dag, force_grouping=True)
        scheduler.observe_memory("f0", 20 * MB)
        scheduler.observe_memory("f1", 20 * MB)
        _, after, _ = scheduler.schedule(dag)
        assert sum(after.values()) > sum(before.values())


class TestEndToEndIteration:
    def test_feedback_loop_localizes_heavy_chain(self, env, cluster):
        """hash partition -> run -> feedback -> grouped partition
        localizes the chain and cuts transfer latency."""
        dag = linear_dag(n=4, output_size=8 * MB)
        scheduler = GraphScheduler(cluster)
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=True))
        placement, quotas, _ = scheduler.schedule(dag)
        system.deploy(dag, placement, quotas=quotas)
        env.run(until=env.process(system.invoke("lin")))
        baseline = system.metrics.transfer_latency(
            "lin", system.metrics.invocations[-1].invocation_id
        )
        scheduler.absorb_feedback(dag, system.metrics)
        placement2, quotas2, report = scheduler.schedule(dag)
        system.deploy(dag, placement2, quotas=quotas2)
        env.run(until=env.process(system.invoke("lin")))
        improved = system.metrics.transfer_latency(
            "lin", system.metrics.invocations[-1].invocation_id
        )
        assert report.grouping is not None
        assert improved < baseline / 5

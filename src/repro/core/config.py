"""Tuning constants for the workflow engines.

These model the per-message and per-event costs of the two schedule
patterns.  The MasterSP costs are calibrated against the paper's §2.3
measurement of HyperFlow-serverless (an average 712 ms scheduling
overhead for 50-node scientific workflows); the WorkerSP costs against
FaaSFlow's §5.2 numbers (141.9 ms for the same workflows).  The
asymmetry is structural, not just a smaller constant: the central engine
serializes every trigger decision and pays two network hops per
function, while per-worker engines run in parallel and trigger local
functions over an in-process RPC.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

__all__ = ["EngineConfig"]

_KB = 1024.0


@dataclass
class EngineConfig:
    """Knobs shared by the MasterSP and WorkerSP implementations."""

    # MasterSP: the central engine handles every state transition and
    # task dispatch in one serialized event loop (HyperFlow's enactment
    # engine plus Docker dispatch on the master).
    master_process_time: float = 0.014

    # WorkerSP: a per-worker engine only bookkeeps its local sub-graph.
    worker_process_time: float = 0.005

    # Local function triggering via inner RPC (paper §3.1).
    local_trigger_time: float = 0.0015

    # DataflowSP: per-token handling cost of function-level dataflow
    # triggering (DFlow/DataFlower).  There is no sub-graph engine loop
    # to serialize behind — tokens are processed in parallel — so each
    # token pays only this constant.
    dataflow_trigger_time: float = 0.002

    # DataflowSP: when on, a producer ships each finished output chunk
    # straight to its remote consumers' nodes the moment it is written
    # (pre-fetched into the consumers' FaaStore before their trigger
    # fires), overlapping transfer with upstream compute.  Off =
    # trigger-only dataflow, the ablation baseline.
    eager_ship: bool = True

    # Control-plane message sizes.
    assign_message_size: float = 2 * _KB  # master -> worker task assignment
    result_message_size: float = 1 * _KB  # worker -> master execution state
    state_message_size: float = 1 * _KB  # worker -> worker state sync

    # Whether intermediate data is shipped between functions.  The
    # scheduling-overhead experiments (paper §2.3/§5.2) pre-pack inputs in
    # the container image, i.e. no data plane traffic.
    ship_data: bool = True

    # Execution timeout: invocations whose functions exceed this are
    # marked failed with the cap as their latency (paper §5.1: 60 s).
    execution_timeout: float = 60.0

    # How many times a crashed function task is retried (fresh
    # container) before the invocation is declared failed.
    max_retries: int = 2

    # Exponential backoff between retries of one task:
    #   delay(n) = min(max, base * factor ** (n - 1)) * (1 ± jitter)
    # base 0 (the default) retries immediately, preserving the seeded
    # event sequences of runs that never configured backoff.  The jitter
    # fraction is hash-derived per (seed, task, attempt), so schedules
    # are independent of sibling interleaving and replay exactly.
    retry_backoff_base: float = 0.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 30.0
    retry_jitter: float = 0.0
    retry_seed: int = 17

    # Per-attempt execution timeout (straggler kill): an attempt running
    # longer than this is interrupted and counts as a retryable failure.
    # 0 disables the watchdog (the default — no extra kernel events).
    function_timeout: float = 0.0

    # When enabled, switch steps execute only their selected arm at
    # runtime (the DAG parser still provisions every arm, §4.1.1); the
    # selection is a deterministic per-invocation hash so distributed
    # engines agree without coordination.  Off by default: the paper's
    # measurements treat switch like parallel.
    evaluate_switches: bool = False

    # Relative execution-time variance: each function execution's
    # service time is multiplied by a lognormal factor with this
    # coefficient of variation (0 = deterministic, the calibrated
    # default).  Seeded per runtime, so runs stay reproducible.
    service_time_jitter: float = 0.0
    jitter_seed: int = 71

    # Tenant owning the invocations this engine serves; a telemetry /
    # SLO label only — no scheduling behavior depends on it.
    tenant: str = "default"

    # Batched control plane (WorkerSP/DataflowSP): coalesce the control
    # messages one engine step emits toward the same destination into a
    # single network transfer and a single handler wakeup.  Off by
    # default — the default event sequence is pinned bit-identically by
    # BENCH_engine.json's A/B harness, while batched mode *diverges*
    # (documented in API.md "Serving throughput" and pinned by test):
    # the coalesced transfer carries the summed payload and the whole
    # batch pays one engine step instead of one per message, so
    # timestamps shift slightly and per-step counters drop.  MasterSP is
    # structurally unaffected: its serialized assignment loop staggers
    # dispatches so no two same-destination messages share a step.
    batch_control: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "master_process_time",
            "worker_process_time",
            "local_trigger_time",
            "dataflow_trigger_time",
            "assign_message_size",
            "result_message_size",
            "state_message_size",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if self.execution_timeout <= 0:
            raise ValueError("execution_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_base < 0:
            raise ValueError("retry_backoff_base must be >= 0")
        if self.retry_backoff_factor < 1:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max < 0:
            raise ValueError("retry_backoff_max must be >= 0")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.retry_jitter > 0 and self.retry_backoff_base <= 0:
            # The documented delay(n) = min(max, base * factor**(n-1))
            # * (1 ± jitter) multiplies a zero base, so jitter alone
            # silently does nothing.  Surface the misconfiguration here
            # instead of letting retries storm back immediately.
            warnings.warn(
                "retry_jitter > 0 has no effect while retry_backoff_base "
                "== 0: every retry delay is 0 regardless of jitter. Set "
                "retry_backoff_base > 0 to enable jittered backoff.",
                UserWarning,
                stacklevel=2,
            )
        if self.function_timeout < 0:
            raise ValueError("function_timeout must be >= 0")
        if self.service_time_jitter < 0:
            raise ValueError("service_time_jitter must be >= 0")

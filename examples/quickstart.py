#!/usr/bin/env python3
"""Quickstart: define a workflow, deploy it on FaaSFlow, invoke it.

Walks the whole public API surface once:

1. author a workflow in the WDL (YAML) with parallel branches,
2. build the simulated cluster (7 workers + storage node, paper §5.1),
3. let the Graph Scheduler partition it and compute FaaStore quotas,
4. deploy sub-graphs to the per-worker engines and run invocations,
5. feed runtime measurements back and re-partition (red-black rollout),
6. read the metrics.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Cluster,
    ClusterConfig,
    Environment,
    FaaSFlowSystem,
    GraphScheduler,
    parse_workflow,
    run_closed_loop,
)

WORKFLOW = """
name: image-pipeline
defaults:
  service_time: 150ms
  memory: 64MB
steps:
  - task: ingest
    output_size: 3MB
  - parallel: analyze
    branches:
      - - task: detect-objects
          service_time: 400ms
          memory: 128MB
          output_size: 0.5MB
      - - task: extract-text
          service_time: 300ms
          output_size: 0.2MB
      - - task: thumbnail
          service_time: 100ms
          output_size: 0.8MB
  - task: publish
    output_size: 1MB
"""


def main() -> None:
    # 1. Parse the workflow definition into a DAG.
    dag = parse_workflow(WORKFLOW)
    print(f"workflow {dag.name!r}: {len(dag.real_nodes())} functions, "
          f"{len(dag.edges)} edges")

    # 2. Build the simulated testbed.
    env = Environment()
    cluster = Cluster(env, ClusterConfig())

    # 3+4. Schedule (hash bootstrap) and deploy, then invoke.
    scheduler = GraphScheduler(cluster)
    system = FaaSFlowSystem(cluster)
    placement, quotas, report = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    print(f"iteration {report.iteration}: hash bootstrap over "
          f"{len(placement.workers())} workers")
    records = run_closed_loop(system, dag.name, 5)
    print(f"  mean latency {1000 * sum(r.latency for r in records) / 5:.1f} ms, "
          f"local bytes {100 * system.metrics.local_fraction(dag.name):.0f}%")

    # 5. Feed measurements back; Algorithm 1 groups the heavy edges.
    scheduler.absorb_feedback(dag, system.metrics)
    placement, quotas, report = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)  # red-black: v2 goes live
    grouping = report.grouping
    print(f"iteration {report.iteration}: {len(grouping.groups)} groups, "
          f"localized producers: {grouping.localized_functions}")
    records = run_closed_loop(system, dag.name, 5)
    print(f"  mean latency {1000 * sum(r.latency for r in records) / 5:.1f} ms, "
          f"local bytes {100 * system.metrics.local_fraction(dag.name):.0f}%")

    # 6. Aggregate metrics.
    print(f"total invocations recorded: {len(system.metrics.invocations)}")
    print(f"p99 latency: {1000 * system.metrics.tail_latency(dag.name):.1f} ms")


if __name__ == "__main__":
    main()

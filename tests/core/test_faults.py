"""Tests for fault injection, retries, and failure propagation."""

import pytest

from repro.clients import run_closed_loop
from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    FaultInjector,
    FunctionFailure,
    HyperFlowServerlessSystem,
)
from repro.metrics import InvocationStatus

from .conftest import all_on, fanout_dag, linear_dag


class TestFaultInjector:
    def test_zero_rate_never_crashes(self):
        injector = FaultInjector(default_rate=0.0)
        assert not any(injector.should_crash("f") for _ in range(100))
        assert injector.injected == 0

    def test_full_rate_always_crashes(self):
        injector = FaultInjector(default_rate=1.0)
        assert all(injector.should_crash("f") for _ in range(10))
        assert injector.injected == 10

    def test_per_function_rates_override(self):
        injector = FaultInjector(default_rate=0.0, rates={"bad": 1.0})
        assert injector.should_crash("bad")
        assert not injector.should_crash("good")

    def test_deterministic_under_seed(self):
        a = FaultInjector(default_rate=0.5, seed=5)
        b = FaultInjector(default_rate=0.5, seed=5)
        assert [a.should_crash("f") for _ in range(50)] == [
            b.should_crash("f") for _ in range(50)
        ]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(default_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(rates={"f": -0.1})


class TestRetries:
    def test_transient_crash_is_retried_and_succeeds(self, env, cluster):
        """Crash the first attempt only: the retry must complete the
        invocation with no visible failure."""

        class CrashOnce(FaultInjector):
            def __init__(self):
                super().__init__(default_rate=0.0)
                self._armed = True

            def should_crash(self, function):
                if function == "f1" and self._armed:
                    self._armed = False
                    self.injected += 1
                    return True
                return False

        injector = CrashOnce()
        system = FaaSFlowSystem(
            cluster, EngineConfig(ship_data=False), faults=injector
        )
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert record.status == InvocationStatus.OK
        assert injector.injected == 1

    def test_crashed_container_is_destroyed(self, env, cluster):
        class CrashOnce(FaultInjector):
            def __init__(self):
                super().__init__(default_rate=0.0)
                self._armed = True

            def should_crash(self, function):
                if self._armed:
                    self._armed = False
                    return True
                return False

        system = FaaSFlowSystem(
            cluster, EngineConfig(ship_data=False), faults=CrashOnce()
        )
        dag = linear_dag(n=1)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert record.status == InvocationStatus.OK
        pool = cluster.node("worker-0").containers
        # Crash + retry = two cold starts, one survivor.
        assert pool.cold_starts == 2
        assert pool.count("f0") == 1

    def test_permanent_crash_fails_invocation(self, env, cluster):
        system = FaaSFlowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=2),
            faults=FaultInjector(rates={"f1": 1.0}),
        )
        dag = linear_dag(n=3)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert record.status == InvocationStatus.FAILED
        assert len(system.metrics.failures("lin")) == 1

    def test_failure_latency_is_time_of_failure(self, env, cluster):
        system = FaaSFlowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=0),
            faults=FaultInjector(rates={"f0": 1.0}),
        )
        dag = linear_dag(n=1, service_time=0.2)
        system.deploy(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "lin", 1)[0]
        assert record.status == InvocationStatus.FAILED
        assert record.latency < system.config.execution_timeout

    def test_master_sp_fails_too(self, env, cluster):
        system = HyperFlowServerlessSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=1),
            faults=FaultInjector(rates={"b1": 1.0}),
        )
        dag = fanout_dag(branches=3)
        system.register(dag, all_on(dag, "worker-0"))
        record = run_closed_loop(system, "fan", 1)[0]
        assert record.status == InvocationStatus.FAILED

    def test_unaffected_functions_still_complete(self, env, cluster):
        """A failure in one branch doesn't corrupt later invocations."""
        system = FaaSFlowSystem(
            cluster,
            EngineConfig(ship_data=False, max_retries=0),
            faults=FaultInjector(rates={"b0": 1.0}),
        )
        dag = fanout_dag(branches=2)
        system.deploy(dag, all_on(dag, "worker-0"))
        first = run_closed_loop(system, "fan", 1)[0]
        assert first.status == InvocationStatus.FAILED
        # Heal the fault and run again.
        system.runtime.faults = FaultInjector(default_rate=0.0)
        second = run_closed_loop(system, "fan", 1)[0]
        assert second.status == InvocationStatus.OK

    def test_retry_accounting_in_result(self, env, cluster):
        from repro.core import Placement, RemoteStorePolicy
        from repro.core.runtime import FunctionRuntime
        from repro.metrics import MetricsCollector

        class CrashTwice(FaultInjector):
            def __init__(self):
                super().__init__(default_rate=0.0)
                self.remaining = 2

            def should_crash(self, function):
                if self.remaining > 0:
                    self.remaining -= 1
                    return True
                return False

        metrics = MetricsCollector()
        runtime = FunctionRuntime(
            cluster,
            EngineConfig(ship_data=False, max_retries=2),
            RemoteStorePolicy(cluster, metrics),
            faults=CrashTwice(),
        )
        dag = linear_dag(n=1)
        placement = all_on(dag, "worker-0")
        result = env.run(
            until=env.process(runtime.execute(dag, placement, 1, "f0"))
        )
        assert result.retries == 2

    def test_retries_exhausted_raises(self, env, cluster):
        from repro.core import RemoteStorePolicy
        from repro.core.runtime import FunctionRuntime
        from repro.metrics import MetricsCollector

        runtime = FunctionRuntime(
            cluster,
            EngineConfig(ship_data=False, max_retries=1),
            RemoteStorePolicy(cluster, MetricsCollector()),
            faults=FaultInjector(default_rate=1.0),
        )
        dag = linear_dag(n=1)
        placement = all_on(dag, "worker-0")
        with pytest.raises(FunctionFailure):
            env.run(until=env.process(runtime.execute(dag, placement, 1, "f0")))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_retries=-1)

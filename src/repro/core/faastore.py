"""FaaStore: adaptive hybrid storage for intermediate workflow data.

Paper §3.2/§4.3: when a function's consumers all run on the same worker
node, its output can stay in node-local memory (reclaimed from
over-provisioned containers) instead of round-tripping through the
remote store.  :class:`FaaStorePolicy` implements that decision; the
:class:`RemoteStorePolicy` baseline always uses the remote store
(HyperFlow-serverless' data-shipping pattern, §2.4).

Both policies expose the same generator-based API — the function
runtime drives them as simulation processes — and record every
operation in the metrics collector so Table 4 / Fig. 5 can be
regenerated.

Object keys are ``{workflow}/{invocation}/{producer}/{chunk}``; mapped
(foreach) producers write one chunk per data-plane executor.  Local
objects are reference-counted and freed once every consumer has fetched
them, returning quota for subsequent invocations.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..dag import WorkflowDAG
from ..metrics import MetricsCollector, TransferEvent
from ..obs.spans import SpanKind
from ..sim import Cluster, KeyNotFoundError, Node
from .state import InvocationID, Placement

__all__ = ["DataPolicy", "RemoteStorePolicy", "FaaStorePolicy", "object_key"]


def object_key(
    workflow: str, invocation_id: InvocationID, producer: str, chunk: int
) -> str:
    return f"{workflow}/{invocation_id}/{producer}/{chunk}"


class DataPolicy:
    """Common machinery for the two storage policies."""

    name = "abstract"

    # Whether the policy can accept dataflow-style eager pushes
    # (producer-initiated worker-to-worker shipping into a consumer
    # node's cache).  Engines must check this before spawning pushes.
    supports_eager_push = False

    def __init__(self, cluster: Cluster, metrics: MetricsCollector):
        self.cluster = cluster
        self.metrics = metrics
        self.env = cluster.env

    # -- API driven by the function runtime (as sim processes) -----------
    def save_output(
        self,
        node: Node,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        function: str,
        chunk: int,
        size: float,
    ) -> Generator:
        raise NotImplementedError

    def fetch_input(
        self,
        node: Node,
        dag: WorkflowDAG,
        placement: Placement,
        invocation_id: InvocationID,
        producer: str,
        consumer: str,
        chunk: int,
        size: float,
    ) -> Generator:
        raise NotImplementedError

    def cleanup_invocation(
        self, dag: WorkflowDAG, invocation_id: InvocationID
    ) -> None:
        """Drop any remaining objects of a finished invocation."""
        for node_obj in dag.nodes:
            chunks = max(1, int(round(node_obj.map_factor)))
            for chunk in range(chunks):
                key = object_key(dag.name, invocation_id, node_obj.name, chunk)
                self.cluster.remote_store.delete(key)
                for worker in self.cluster.workers:
                    worker.memstore.delete(key)

    # -- shared helpers ----------------------------------------------------
    def _record(
        self,
        dag: WorkflowDAG,
        invocation_id: InvocationID,
        producer: str,
        consumer: str,
        size: float,
        duration: float,
        phase: str,
        local: bool,
        node: str = "",
    ) -> None:
        self.metrics.record_transfer(
            TransferEvent(
                workflow=dag.name,
                invocation_id=invocation_id,
                producer=producer,
                consumer=consumer,
                size=size,
                duration=duration,
                phase=phase,
                local=local,
            )
        )
        telemetry = self.cluster.telemetry
        if telemetry.enabled:
            locality = "local" if local else "remote"
            telemetry.inc(
                "data.bytes", size,
                workflow=dag.name, node=node, phase=phase, local=locality,
            )
            telemetry.inc(
                "data.ops", 1.0,
                workflow=dag.name, node=node, phase=phase, local=locality,
            )
            telemetry.observe(
                "data.seconds", duration,
                workflow=dag.name, node=node, phase=phase, local=locality,
            )
        spans = self.cluster.spans
        if spans.enabled:
            # The acting function (producer for puts, consumer for
            # gets) parents the span under its own function span.
            actor = consumer if phase == "get" else producer
            spans.record(
                SpanKind.GET if phase == "get" else SpanKind.PUT,
                self.env.now - duration,
                workflow=dag.name,
                invocation_id=invocation_id,
                function=actor,
                node=node,
                parent=spans.context_of(invocation_id, actor),
                producer=producer,
                size=size,
                local=local,
            )

    def _remote_put(self, node, dag, invocation_id, function, chunk, size):
        key = object_key(dag.name, invocation_id, function, chunk)
        start = self.env.now
        yield self.cluster.remote_store.put(key, size, src=node.nic, tag=key)
        self._record(
            dag, invocation_id, function, "", size, self.env.now - start,
            "put", local=False, node=node.name,
        )

    def _remote_get(self, node, dag, invocation_id, producer, consumer, chunk, size):
        key = object_key(dag.name, invocation_id, producer, chunk)
        start = self.env.now
        try:
            yield self.cluster.remote_store.get(key, dst=node.nic, tag=key)
        except KeyNotFoundError:
            # The invocation timed out and its objects were cleaned up
            # while this straggler task was still queued; abort quietly.
            return
        self._record(
            dag, invocation_id, producer, consumer, size,
            self.env.now - start, "get", local=False, node=node.name,
        )


class RemoteStorePolicy(DataPolicy):
    """Always ship data through the remote store (the MasterSP baseline)."""

    name = "remote"

    def save_output(
        self, node, dag, placement, invocation_id, function, chunk, size
    ):
        if size <= 0:
            return
        yield from self._remote_put(node, dag, invocation_id, function, chunk, size)

    def fetch_input(
        self, node, dag, placement, invocation_id, producer, consumer, chunk, size
    ):
        if size <= 0:
            return
        yield from self._remote_get(
            node, dag, invocation_id, producer, consumer, chunk, size
        )


class FaaStorePolicy(DataPolicy):
    """Node-local storage with read-through caching.

    Three behaviors compose (paper §3.2, §4.3):

    - A producer whose consumers are *all* on its own node writes only
      to the node's memory store — the remote store is never touched.
    - A producer with remote consumers must write to the remote store,
      but it *seeds* its node's cache for any co-located consumers.
    - A consumer that misses locally reads through the remote store and
      seeds its node's cache if co-located siblings still need the
      object — so a fan-out's object crosses the network once per
      *node*, not once per *consumer*.

    Algorithm 1's quota accounting marks producers 'DB' when the
    reclaimed memory cannot hold their residency; those bypass the cache
    entirely.  On quota overflow the memory store refuses the object
    and everything falls back to the remote store — a mis-sized quota
    degrades performance, never correctness.
    """

    name = "faastore"
    supports_eager_push = True

    def __init__(self, cluster: Cluster, metrics: MetricsCollector):
        super().__init__(cluster, metrics)
        # (key, node) -> remaining local fetches before the object frees.
        self._refcounts: dict[tuple[str, str], int] = {}
        # (key, node) -> event: a read-through fetch is in flight; other
        # co-located missers wait on it instead of re-fetching
        # (single-flight coalescing — essential under fan-out, where all
        # consumers miss at the same instant).
        self._inflight: dict[tuple[str, str], object] = {}

    @staticmethod
    def _marked_db(dag, function: str) -> bool:
        return dag.node(function).metadata.get("storage_type") == "DB"

    def save_output(
        self, node, dag, placement, invocation_id, function, chunk, size
    ):
        if size <= 0:
            return
        key = object_key(dag.name, invocation_id, function, chunk)
        consumers = dag.data_consumers(function)
        use_cache = consumers and not self._marked_db(dag, function)
        local_consumers = [
            c for c in consumers if placement.node_of(c) == node.name
        ]
        if use_cache and len(local_consumers) == len(consumers):
            start = self.env.now
            done = node.memstore.try_put(key, size)
            if done is not None:
                # Each consumer function fetches each chunk once.
                self._refcounts[(key, node.name)] = len(consumers)
                yield done
                self._record(
                    dag, invocation_id, function, "", size,
                    self.env.now - start, "put", local=True, node=node.name,
                )
                return
            self._spill(dag, invocation_id, function, node, size, "put")
        yield from self._remote_put(node, dag, invocation_id, function, chunk, size)
        if use_cache and local_consumers:
            # Seed the producer-node cache: co-located consumers read
            # the bytes that are already here instead of re-fetching.
            seeded = node.memstore.try_put(key, size)
            if seeded is not None:
                self._refcounts[(key, node.name)] = len(local_consumers)
                yield seeded
            else:
                self._spill(dag, invocation_id, function, node, size, "seed")

    def fetch_input(
        self, node, dag, placement, invocation_id, producer, consumer, chunk, size
    ):
        if size <= 0:
            return
        key = object_key(dag.name, invocation_id, producer, chunk)
        cache_slot = (key, node.name)
        if key in node.memstore:
            yield from self._local_get(
                node, dag, invocation_id, producer, consumer, size, cache_slot
            )
            return
        if self._marked_db(dag, producer):
            yield from self._remote_get(
                node, dag, invocation_id, producer, consumer, chunk, size
            )
            return
        inflight = self._inflight.get(cache_slot)
        if inflight is not None:
            # A co-located sibling is already pulling this object; wait
            # for it and serve from the seeded cache.
            yield inflight
            if key in node.memstore:
                yield from self._local_get(
                    node, dag, invocation_id, producer, consumer, size,
                    cache_slot,
                )
                return
            # Seeding failed (quota): fall back to a remote fetch.
            yield from self._remote_get(
                node, dag, invocation_id, producer, consumer, chunk, size
            )
            return
        arrival = self.env.event()
        self._inflight[cache_slot] = arrival
        try:
            yield from self._remote_get(
                node, dag, invocation_id, producer, consumer, chunk, size
            )
            # Read-through: leave the object for co-located siblings
            # that have not fetched this chunk yet.
            siblings_pending = (
                sum(
                    1
                    for c in dag.data_consumers(producer)
                    if placement.node_of(c) == node.name
                )
                - 1
            )
            if siblings_pending > 0 and key not in node.memstore:
                seeded = node.memstore.try_put(key, size)
                if seeded is not None:
                    self._refcounts[cache_slot] = siblings_pending
                    yield seeded
                else:
                    self._spill(
                        dag, invocation_id, producer, node, size, "read-through"
                    )
        finally:
            self._inflight.pop(cache_slot, None)
            arrival.succeed()

    def eager_push(
        self,
        src_node,
        dst_node,
        dag,
        placement,
        invocation_id: InvocationID,
        producer: str,
        chunk: int,
        size: float,
        consumers_on_node: int,
    ) -> Generator:
        """Dataflow eager shipping: pre-fetch one output chunk into a
        *consumer* node's cache the moment the producer wrote it.

        The bytes travel worker-to-worker (never touching the storage
        node's NIC) while upstream functions are still computing, so by
        the time the consumer's last trigger fires its input is already
        local.  The push registers in the single-flight ``_inflight``
        map: a consumer that fires mid-push waits for *this* transfer
        instead of starting a remote read — the transfer that began at
        produce time always wins the race.  A quota overflow on the
        consumer node degrades to the normal remote read-through path;
        like every FaaStore decision, eager shipping can only change
        performance, never correctness.
        """
        if size <= 0 or consumers_on_node <= 0:
            return
        key = object_key(dag.name, invocation_id, producer, chunk)
        slot = (key, dst_node.name)
        if key in dst_node.memstore or slot in self._inflight:
            return  # already there, or a sibling transfer owns the slot
        arrival = self.env.event()
        self._inflight[slot] = arrival
        start = self.env.now
        try:
            yield self.cluster.network.message(
                src_node.nic, dst_node.nic, size, tag=f"push:{key}"
            )
            seeded = dst_node.memstore.try_put(key, size)
            if seeded is not None:
                self._refcounts[slot] = consumers_on_node
                yield seeded
                self._record_push(
                    dag, invocation_id, producer, size,
                    self.env.now - start, dst_node.name,
                )
            else:
                self._spill(dag, invocation_id, producer, dst_node, size, "push")
        finally:
            self._inflight.pop(slot, None)
            if not arrival.triggered:
                arrival.succeed()

    def _record_push(
        self, dag, invocation_id, producer, size, duration, node: str
    ) -> None:
        """Account an eager push (phase ``"push"``, worker-to-worker)."""
        self.metrics.record_transfer(
            TransferEvent(
                workflow=dag.name,
                invocation_id=invocation_id,
                producer=producer,
                consumer="",
                size=size,
                duration=duration,
                phase="push",
                local=False,
            )
        )
        telemetry = self.cluster.telemetry
        if telemetry.enabled:
            telemetry.inc(
                "data.bytes", size,
                workflow=dag.name, node=node, phase="push", local="remote",
            )
            telemetry.inc(
                "data.ops", 1.0,
                workflow=dag.name, node=node, phase="push", local="remote",
            )
            telemetry.observe(
                "data.seconds", duration,
                workflow=dag.name, node=node, phase="push", local="remote",
            )
        spans = self.cluster.spans
        if spans.enabled:
            # Producer function spans have usually ended by push time
            # (propagation is post-execute), so parent under the
            # invocation root when the function context is gone.
            parent = spans.context_of(invocation_id, producer)
            if parent is None:
                parent = spans.root_of(invocation_id)
            spans.record(
                SpanKind.PUT,
                self.env.now - duration,
                workflow=dag.name,
                invocation_id=invocation_id,
                function=producer,
                node=node,
                parent=parent,
                producer=producer,
                size=size,
                local=False,
                eager=True,
            )

    def _spill(self, dag, invocation_id, function, node, size, phase) -> None:
        """Note a quota overflow: the local store refused the object."""
        if self.cluster.telemetry.enabled:
            self.cluster.telemetry.inc(
                "data.spills", 1.0,
                workflow=dag.name, node=node.name, phase=phase,
            )
        spans = self.cluster.spans
        if spans.enabled:
            spans.event(
                SpanKind.SPILL,
                workflow=dag.name,
                invocation_id=invocation_id,
                function=function,
                node=node.name,
                size=size,
                phase=phase,
            )

    def _local_get(
        self, node, dag, invocation_id, producer, consumer, size, cache_slot
    ):
        start = self.env.now
        yield node.memstore.get(cache_slot[0])
        self._record(
            dag, invocation_id, producer, consumer, size,
            self.env.now - start, "get", local=True, node=node.name,
        )
        remaining = self._refcounts.get(cache_slot, 1) - 1
        if remaining <= 0:
            node.memstore.delete(cache_slot[0])
            self._refcounts.pop(cache_slot, None)
        else:
            self._refcounts[cache_slot] = remaining

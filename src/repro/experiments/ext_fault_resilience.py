"""Extension — workflow success under function crashes.

Not a paper artifact: an extension study enabled by the library's fault
injector.  Function executions crash with probability ``p``; the engine
retries each task up to its budget.  The study reports the invocation
success rate and the latency cost of retries for both schedule
patterns, and how the retry budget moves the success curve.

The structural expectation: success rate falls roughly like
``(1 - p^(r+1))^n`` for n tasks and r retries, so even modest budgets
rescue large workflows from per-task crash rates that would otherwise
doom nearly every invocation.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..core import (
    EngineConfig,
    FaaSFlowSystem,
    FaultInjector,
    HyperFlowServerlessSystem,
    hash_partition,
)
from ..workloads import build
from .common import ExperimentResult, make_cluster

__all__ = ["run"]


def _measure(engine: str, rate: float, retries: int, invocations: int):
    cluster = make_cluster()
    faults = FaultInjector(default_rate=rate, seed=42)
    config = EngineConfig(ship_data=False, max_retries=retries)
    dag = build("epigenomics")
    if engine == "master":
        system = HyperFlowServerlessSystem(cluster, config, faults=faults)
        system.register(dag, hash_partition(dag, cluster.worker_names()))
    else:
        system = FaaSFlowSystem(cluster, config, faults=faults)
        system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    records = run_closed_loop(system, dag.name, invocations)
    ok = [r for r in records if r.status == "ok"]
    return {
        "success_rate": len(ok) / len(records),
        "mean_ok_latency": (
            sum(r.latency for r in ok) / len(ok) if ok else float("nan")
        ),
        "injected": faults.injected,
    }


def run(
    invocations: int = 10,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    retry_budgets: tuple[int, ...] = (0, 2),
) -> ExperimentResult:
    rows = []
    for engine in ("worker", "master"):
        for rate in rates:
            for retries in retry_budgets:
                stats = _measure(engine, rate, retries, invocations)
                rows.append(
                    [
                        "FaaSFlow" if engine == "worker" else "HyperFlow",
                        f"{100 * rate:.0f}%",
                        retries,
                        f"{100 * stats['success_rate']:.0f}%",
                        round(stats["mean_ok_latency"], 2),
                        stats["injected"],
                    ]
                )
    notes = [
        "retries rescue success rates at the cost of latency on the "
        "crashed paths; both schedule patterns degrade alike (failure "
        "handling is orthogonal to trigger placement)",
    ]
    return ExperimentResult(
        experiment="ext-faults",
        title="Extension: invocation success under function crash rates",
        headers=[
            "engine",
            "crash rate",
            "retry budget",
            "success rate",
            "mean ok latency (s)",
            "crashes injected",
        ],
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

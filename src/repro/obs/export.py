"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL spans.

Two on-disk forms of a span trace:

- **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  One track
  (process) per node plus a ``client`` track for master/client-side
  spans; spans are ``"ph": "X"`` complete events placed on lanes
  (threads) chosen so every lane is strictly well-nested, and resource
  samples become ``"ph": "C"`` counter tracks.
- **JSONL span dumps** — one JSON object per line, first line a meta
  record carrying the ``dropped`` count; round-trips through
  :func:`read_spans_jsonl`.

:func:`export_trace` writes the full bundle for a run (spans.jsonl,
trace.json, samples.csv, plus the existing metrics CSVs when a
collector is given).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .sampler import ResourceSampler, write_samples_csv
from .spans import Span, SpanKind

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "validate_chrome_trace",
    "export_trace",
]

PathLike = Union[str, Path]

_EPS = 1e-9
_US = 1e6  # trace-event timestamps are microseconds


def _display_name(span: Span) -> str:
    if span.function:
        return f"{span.kind}:{span.function}"
    if span.kind == SpanKind.INVOCATION:
        return f"invocation#{span.invocation_id}"
    return span.kind


def _assign_lanes(spans: list[Span]) -> list[tuple[Span, int]]:
    """Greedy interval nesting: place each span on the first lane where
    it either nests inside the lane's currently-open span or starts
    after everything on the lane has ended.  Guarantees every lane is
    strictly well-nested."""
    ordered = sorted(
        spans, key=lambda s: (s.start, -(s.duration), s.span_id)
    )
    lanes: list[list[Span]] = []  # per-lane stack of open spans
    placed: list[tuple[Span, int]] = []
    for span in ordered:
        end = span.end if span.end is not None else span.start
        lane_index = None
        for index, stack in enumerate(lanes):
            while stack and (stack[-1].end or 0.0) <= span.start + _EPS:
                stack.pop()
            if not stack or (
                stack[-1].start <= span.start + _EPS
                and end <= (stack[-1].end or 0.0) + _EPS
            ):
                lane_index = index
                break
        if lane_index is None:
            lanes.append([])
            lane_index = len(lanes) - 1
        lanes[lane_index].append(span)
        placed.append((span, lane_index))
    return placed


def chrome_trace(
    spans: list[Span],
    samples: Optional[list] = None,
    dropped: int = 0,
) -> dict:
    """Build the Chrome trace-event document for a span list."""
    nodes = sorted({s.node for s in spans if s.node})
    if samples:
        nodes = sorted(set(nodes) | {s.node for s in samples})
    pids = {"client": 1}
    for index, node in enumerate(nodes, start=2):
        pids[node] = index
    events: list[dict] = []
    for name, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    by_pid: dict[int, list[Span]] = {}
    for span in spans:
        by_pid.setdefault(pids.get(span.node or "client", 1), []).append(span)
    for pid, pid_spans in sorted(by_pid.items()):
        for span, lane in _assign_lanes(pid_spans):
            end = span.end if span.end is not None else span.start
            args = {
                "workflow": span.workflow,
                "invocation_id": span.invocation_id,
                "status": span.status,
            }
            if span.function:
                args["function"] = span.function
            args.update(span.attrs)
            events.append(
                {
                    "name": _display_name(span),
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": (end - span.start) * _US,
                    "pid": pid,
                    "tid": lane,
                    "args": args,
                }
            )
    mb = 1024.0 * 1024.0
    for sample in samples or []:
        pid = pids.get(sample.node)
        if pid is None:
            continue
        ts = sample.time * _US
        events.append(
            {
                "name": "cpu (busy cores)",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "args": {"busy": sample.cpu_busy},
            }
        )
        events.append(
            {
                "name": "memory (MB)",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "args": {
                    "containers": sample.container_mem / mb,
                    "faastore pool": sample.faastore_pool / mb,
                    "other": max(
                        0.0,
                        sample.mem_reserved
                        - sample.container_mem
                        - sample.faastore_pool,
                    )
                    / mb,
                },
            }
        )
        events.append(
            {
                "name": "faastore used (MB)",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "args": {"used": sample.faastore_used / mb},
            }
        )
        events.append(
            {
                "name": "nic utilization",
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "args": {
                    "egress": sample.egress_util,
                    "ingress": sample.ingress_util,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"dropped_spans": dropped},
    }


def write_chrome_trace(
    path: PathLike,
    tracer,
    sampler: Optional[ResourceSampler] = None,
    finalize: bool = True,
) -> Path:
    """Render a tracer (plus optional sampler) to a Perfetto-loadable file."""
    if finalize:
        tracer.finalize()
    document = chrome_trace(
        tracer.all_spans(),
        samples=sampler.samples if sampler is not None else None,
        dropped=tracer.dropped,
    )
    path = Path(path)
    path.write_text(json.dumps(document))
    return path


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural checks on a trace-event document; returns problems.

    Verifies the required fields on every event and that the ``X``
    events of each (pid, tid) lane are strictly well-nested.
    """
    problems = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    lanes: dict[tuple, list[tuple[float, float]]] = {}
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "C", "M"):
            problems.append(f"event {index}: unknown ph {ph!r}")
            continue
        if "pid" not in event:
            problems.append(f"event {index}: missing pid")
            continue
        if ph != "X":
            continue
        for key in ("ts", "dur", "tid", "name"):
            if key not in event:
                problems.append(f"event {index}: missing {key}")
                break
        else:
            if event["dur"] < 0:
                problems.append(f"event {index}: negative dur")
            lanes.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
    for lane, intervals in lanes.items():
        # Equal-start spans nest longest-first (the enclosing span
        # opens before its children on the stack).
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack: list[tuple[float, float]] = []
        for start, end in intervals:
            while stack and stack[-1][1] <= start + _EPS * _US:
                stack.pop()
            if stack and end > stack[-1][1] + _EPS * _US:
                problems.append(
                    f"lane {lane}: span [{start}, {end}] overlaps "
                    f"[{stack[-1][0]}, {stack[-1][1]}] without nesting"
                )
                break
            stack.append((start, end))
    return problems


def write_spans_jsonl(path: PathLike, tracer, finalize: bool = True) -> Path:
    """Dump spans, one JSON object per line (meta record first)."""
    if finalize:
        tracer.finalize()
    spans = tracer.all_spans()
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(
            json.dumps(
                {
                    "type": "meta",
                    "spans": len(spans),
                    "dropped": tracer.dropped,
                    "limit": tracer.limit,
                }
            )
            + "\n"
        )
        for span in spans:
            handle.write(
                json.dumps(
                    {
                        "type": "span",
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "kind": span.kind,
                        "start": span.start,
                        "end": span.end,
                        "workflow": span.workflow,
                        "invocation_id": span.invocation_id,
                        "function": span.function,
                        "node": span.node,
                        "status": span.status,
                        "attrs": span.attrs,
                    }
                )
                + "\n"
            )
    return path


def read_spans_jsonl(path: PathLike) -> tuple[list[Span], dict]:
    """Load a JSONL span dump; returns ``(spans, meta)``."""
    spans: list[Span] = []
    meta: dict = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "meta":
                meta = data
                continue
            spans.append(
                Span(
                    span_id=data["span_id"],
                    parent_id=data["parent_id"],
                    kind=data["kind"],
                    start=data["start"],
                    end=data["end"],
                    workflow=data.get("workflow", ""),
                    invocation_id=data.get("invocation_id", 0),
                    function=data.get("function", ""),
                    node=data.get("node", ""),
                    status=data.get("status", "ok"),
                    attrs=data.get("attrs", {}),
                )
            )
    return spans, meta


def export_trace(
    directory: PathLike,
    tracer,
    sampler: Optional[ResourceSampler] = None,
    metrics=None,
    prefix: str = "run",
    telemetry=None,
) -> dict[str, Path]:
    """Write one run's full trace bundle into ``directory``.

    Produces ``<prefix>-spans.jsonl`` and ``<prefix>-trace.json``
    (Perfetto), plus ``<prefix>-samples.csv`` when a sampler is given,
    the standard metrics CSVs when a collector is given, and
    ``<prefix>-telemetry.json`` when a metrics registry (or snapshot
    dict) is given.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tracer.finalize()
    paths = {
        "spans": write_spans_jsonl(
            directory / f"{prefix}-spans.jsonl", tracer, finalize=False
        ),
        "perfetto": write_chrome_trace(
            directory / f"{prefix}-trace.json",
            tracer,
            sampler=sampler,
            finalize=False,
        ),
    }
    if sampler is not None:
        samples_path = directory / f"{prefix}-samples.csv"
        write_samples_csv(sampler.samples, samples_path)
        paths["samples"] = samples_path
    if metrics is not None:
        from ..metrics.export import export_metrics

        paths.update(export_metrics(metrics, directory, prefix=prefix))
    if telemetry is not None:
        from .telemetry import write_telemetry_json

        paths["telemetry"] = write_telemetry_json(
            directory / f"{prefix}-telemetry.json", telemetry
        )
    return paths

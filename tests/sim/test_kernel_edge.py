"""Edge-case tests for the simulation kernel (beyond the basics)."""

import pytest

from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    StopProcess,
)
from repro.sim.sync import Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestRunUntilFailures:
    def test_awaited_process_failure_reraises(self, env):
        def boom(env):
            yield env.timeout(1.0)
            raise KeyError("expected")

        with pytest.raises(KeyError):
            env.run(until=env.process(boom(env)))

    def test_unawaited_failure_still_crashes(self, env):
        def boom(env):
            yield env.timeout(1.0)
            raise KeyError("unhandled")

        env.process(boom(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_failure_observed_by_sibling_does_not_crash(self, env):
        def boom(env):
            yield env.timeout(1.0)
            raise KeyError("observed")

        def observer(env, target):
            try:
                yield target
            except KeyError:
                return "caught"

        target = env.process(boom(env))
        watcher = env.process(observer(env, target))
        assert env.run(until=watcher) == "caught"


class TestNestedProcesses:
    def test_three_levels_of_nesting(self, env):
        def leaf(env):
            yield env.timeout(1.0)
            return "leaf"

        def middle(env):
            value = yield env.process(leaf(env))
            return f"middle({value})"

        def root(env):
            value = yield env.process(middle(env))
            return f"root({value})"

        assert env.run(until=env.process(root(env))) == "root(middle(leaf))"

    def test_exception_bubbles_through_levels(self, env):
        def leaf(env):
            yield env.timeout(1.0)
            raise ValueError("deep")

        def middle(env):
            yield env.process(leaf(env))

        def root(env):
            try:
                yield env.process(middle(env))
            except ValueError as error:
                return str(error)

        assert env.run(until=env.process(root(env))) == "deep"

    def test_interrupting_parent_leaves_child_running(self, env):
        log = []

        def child(env):
            yield env.timeout(5.0)
            log.append("child-done")

        def parent(env):
            try:
                yield env.process(child(env))
            except Interrupt:
                log.append("parent-interrupted")

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        p = env.process(parent(env))
        env.process(attacker(env, p))
        env.run()
        assert log == ["parent-interrupted", "child-done"]


class TestInterruptDuringResourceWait:
    def test_interrupted_waiter_leaves_queue(self, env):
        resource = Resource(env, capacity=1)
        holder_done = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10.0)
                holder_done.append(env.now)

        def waiter(env):
            with resource.request() as req:
                try:
                    yield req
                except Interrupt:
                    return "interrupted"

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        env.process(holder(env))
        w = env.process(waiter(env))
        env.process(attacker(env, w))
        assert env.run(until=w) == "interrupted"
        env.run()
        # The interrupted request must not hold or receive the slot.
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_interrupted_store_getter_cleans_up(self, env):
        store = Store(env)

        def getter(env):
            get = store.get()
            try:
                yield get
            except Interrupt:
                store.cancel_get(get)
                return "interrupted"

        def attacker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        g = env.process(getter(env))
        env.process(attacker(env, g))
        assert env.run(until=g) == "interrupted"
        # Later puts are not consumed by the dead getter.
        store.put("x")
        env.run()
        assert store.items == ("x",)


class TestStopProcess:
    def test_early_exit_value_reaches_waiter(self, env):
        def worker(env):
            yield env.timeout(1.0)
            raise StopProcess("partial-result")
            yield env.timeout(100.0)  # pragma: no cover

        def waiter(env):
            value = yield env.process(worker(env))
            return f"got {value}"

        p = env.process(waiter(env))
        assert env.run(until=p) == "got partial-result"
        assert env.now == 1.0

    def test_stop_with_no_value_yields_none(self, env):
        def worker(env):
            yield env.timeout(1.0)
            raise StopProcess()

        def waiter(env):
            value = yield env.process(worker(env))
            return value

        p = env.process(waiter(env))
        assert env.run(until=p) is None


class TestInterruptDuringCondition:
    def test_interrupt_while_waiting_on_all_of(self, env):
        def victim(env):
            try:
                yield env.all_of([env.timeout(50.0), env.timeout(80.0)])
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def attacker(env, target):
            yield env.timeout(2.0)
            target.interrupt("quota")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(until=v) == ("interrupted", "quota", 2.0)
        # The abandoned condition's timeouts still drain without error.
        env.run()
        assert env.now == 80.0

    def test_interrupt_while_waiting_on_any_of(self, env):
        def victim(env):
            try:
                yield env.any_of([env.timeout(50.0), env.timeout(80.0)])
            except Interrupt:
                return env.now

        def attacker(env, target):
            yield env.timeout(3.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(until=v) == 3.0


class TestCrashSurfacesFromStep:
    def test_unwaited_crash_raises_from_step(self, env):
        def boom(env):
            yield env.timeout(1.0)
            raise RuntimeError("nobody is watching")

        env.process(boom(env))
        with pytest.raises(SimulationError) as exc_info:
            while True:
                env.step()
        assert "crashed" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, RuntimeError)

    def test_crash_with_waiter_does_not_raise_from_step(self, env):
        def boom(env):
            yield env.timeout(1.0)
            raise RuntimeError("observed")

        def observer(env, target):
            try:
                yield target
            except RuntimeError:
                return "ok"

        target = env.process(boom(env))
        env.process(observer(env, target))
        while env.peek() != float("inf"):
            env.step()
        assert env.now == 1.0


class TestEmptyAnyOf:
    def test_any_of_empty_list_raises(self, env):
        # all_of([]) is vacuously true; any_of([]) could never fire, so
        # it is rejected eagerly instead of deadlocking the waiter.
        with pytest.raises(SimulationError):
            env.any_of([])


class TestTimeoutPooling:
    def test_recycled_timeouts_deliver_their_own_values(self, env):
        """The Timeout free-list must never leak a stale value or state
        into a reused object."""

        def proc(env):
            got = []
            for i in range(500):
                value = yield env.timeout(0.01, ("tick", i))
                got.append(value)
            return got

        p = env.process(proc(env))
        result = env.run(until=p)
        assert result == [("tick", i) for i in range(500)]

    def test_held_timeout_is_never_recycled(self, env):
        """A Timeout the caller still references must keep its value
        even after thousands of later timeouts could have reused it."""
        held = env.timeout(0.5, "mine")

        def churner(env):
            for _ in range(1000):
                yield env.timeout(0.001)

        env.process(churner(env))
        env.run()
        assert held.processed
        assert held.value == "mine"


class TestZeroDelay:
    def test_zero_timeouts_preserve_order(self, env):
        order = []

        def proc(env, name):
            yield env.timeout(0.0)
            order.append(name)

        for name in "abc":
            env.process(proc(env, name))
        env.run()
        assert order == list("abc")

    def test_chained_zero_delays_make_progress(self, env):
        def proc(env):
            for _ in range(1000):
                yield env.timeout(0.0)
            return env.now

        assert env.run(until=env.process(proc(env))) == 0.0


class TestEventReuse:
    def test_yielding_same_processed_event_twice(self, env):
        ev = env.event()
        ev.succeed("v")
        env.run()

        def proc(env):
            a = yield ev
            b = yield ev
            return (a, b)

        assert env.run(until=env.process(proc(env))) == ("v", "v")

    def test_many_waiters_one_event(self, env):
        ev = env.event()
        results = []

        def waiter(env, i):
            value = yield ev
            results.append((i, value))

        for i in range(50):
            env.process(waiter(env, i))

        def firer(env):
            yield env.timeout(1.0)
            ev.succeed("go")

        env.process(firer(env))
        env.run()
        assert len(results) == 50
        assert all(v == "go" for _, v in results)

# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""FaaSFlow's WorkerSP: per-worker engines with local triggering (§3.1, §4.2).

Each worker node runs a :class:`WorkerEngine` holding the *Workflow*
structures (sub-graphs) the graph scheduler assigned to it.  When a
local function finishes, the engine inspects its successors: local ones
are triggered over an in-process RPC; remote ones receive a state
message over a worker-to-worker TCP connection.  No task assignment
ever crosses the network — the master only partitions graphs and
(acting as the client) receives the final execution state from the
sink functions' workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.dag import WorkflowDAG
from repro.metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
)
from repro.obs.spans import SpanKind
from repro.obs.telemetry import record_invocation_metrics
from repro.sim import Cluster, Node, Resource
from repro.core.config import EngineConfig
from repro.core.faastore import DataPolicy, FaaStorePolicy
from repro.core.faults import (
    CancelCause,
    CancelKind,
    FaultInjector,
    FunctionFailure,
    ProcessRegistry,
    TaskCancelled,
)
from .master_engine import static_critical_exec
from .runtime import FunctionRuntime
from repro.core.switching import is_skipped
from .state import (
    InvocationID,
    Placement,
    WorkflowStructure,
    new_invocation_id,
)
from repro.core.tracing import Kind, Tracer

__all__ = ["WorkerEngine", "FaaSFlowSystem"]


@dataclass
class _InvocationContext:
    """Client-side bookkeeping for one in-flight invocation."""

    record: InvocationRecord
    version: int
    sinks_remaining: int
    all_done: object  # kernel Event
    failed: object = None  # kernel Event


@dataclass
class _DeployedWorkflow:
    dag: WorkflowDAG
    placement: Placement
    critical_exec: float
    live_invocations: int = 0


class WorkerEngine:
    """The decentralized engine on one worker node."""

    def __init__(self, system: "FaaSFlowSystem", node: Node):
        self.system = system
        self.node = node
        self.env = node.env
        self._lock = Resource(self.env, capacity=1)
        # (workflow, version) -> structure for the local sub-graph.
        self._structures: dict[tuple[str, int], WorkflowStructure] = {}
        self.states_synced = 0  # cross-worker state messages received
        self.events_handled = 0  # engine-loop steps executed
        self.busy_time = 0.0  # seconds the engine loop was occupied
        # Crash state: while down, incoming control messages are queued
        # (the senders' TCP stacks would retry the connection) and
        # replayed on recovery.
        self.down = False
        self.crash_count = 0
        self._deferred: list[tuple[str, str, int, InvocationID, str]] = []

    # -- deployment ---------------------------------------------------------
    def deploy(self, structure: WorkflowStructure) -> None:
        self._structures[(structure.workflow, structure.version)] = structure

    def retire(self, workflow: str, version: int) -> None:
        """Red-black support: drop an out-of-date sub-graph version."""
        structure = self._structures.pop((workflow, version), None)
        if structure is None:
            return
        for function in structure.local_functions:
            if not structure.info(function).is_virtual:
                self.node.containers.recycle_version(function, version + 1)

    def structure(self, workflow: str, version: int) -> WorkflowStructure:
        try:
            return self._structures[(workflow, version)]
        except KeyError:
            raise KeyError(
                f"no sub-graph of {workflow!r} v{version} on {self.node.name}"
            ) from None

    def has_structure(self, workflow: str, version: int) -> bool:
        return (workflow, version) in self._structures

    @property
    def deployed_count(self) -> int:
        return len(self._structures)

    # -- engine event loop ----------------------------------------------------
    def _engine_step(self) -> Generator:
        # The context manager releases the lock even when the process
        # is interrupted while *waiting* for it (an ungranted request
        # is cancelled out of the queue rather than released).
        with self._lock.request() as request:
            yield request
            yield self.env.timeout(self.system.config.worker_process_time)
            self.events_handled += 1
            self.busy_time += self.system.config.worker_process_time

    # -- state synchronization (paper Fig. 6) ---------------------------------
    def receive_state_update(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A predecessor of a local ``function`` finished somewhere."""
        if self.down:
            self._deferred.append(
                ("update", workflow, version, invocation_id, function)
            )
            return
        yield from self._engine_step()
        structure = self.structure(workflow, version)
        info = structure.info(function)
        state = structure.invocation(invocation_id).state_of(function)
        state.mark_predecessor_done()
        if state.ready(info.predecessors_count):
            state.triggered = True
            self.system.spawn_registered(
                self.run_function(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"worker:{self.node.name}:{function}",
            )

    def trigger_source(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """Invocation request for an entry function arrived at this node."""
        if self.down:
            self._deferred.append(
                ("trigger", workflow, version, invocation_id, function)
            )
            return
        yield from self._engine_step()
        structure = self.structure(workflow, version)
        state = structure.invocation(invocation_id).state_of(function)
        if not state.triggered:
            state.triggered = True
            self.system.spawn_registered(
                self.run_function(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"worker:{self.node.name}:{function}",
            )

    # -- local execution -----------------------------------------------------
    def run_function(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        structure = self.structure(workflow, version)
        info = structure.info(function)
        self.system.trace(
            Kind.FUNCTION_TRIGGERED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        skipped = (
            self.system.config.evaluate_switches
            and not info.is_virtual
            and is_skipped(structure.dag, function, invocation_id)
        )
        if info.is_virtual or skipped:
            # Virtual step markers (and non-selected switch arms) cost
            # one local bookkeeping action, no container and no data.
            yield self.env.timeout(self.system.config.local_trigger_time)
            if skipped:
                self.system.trace(
                    Kind.FUNCTION_EXECUTED, workflow, invocation_id,
                    function=function, node=self.node.name, detail="skipped",
                )
        else:
            execute_proc = self.system.spawn_registered(
                self.system.runtime.execute(
                    structure.dag,
                    structure.placement,
                    invocation_id,
                    function,
                    version=version,
                ),
                invocation_id,
                node=self.node.name,
                name=f"execute:{self.node.name}:{function}",
            )
            try:
                result = yield execute_proc
            except TaskCancelled:
                return  # whoever cancelled us owns the invocation's fate
            except FunctionFailure:
                # The task exhausted its retries: report the failure to
                # the client like a sink would report success.
                report_start = self.env.now
                yield self.system.network.message(
                    self.node.nic,
                    self.system.client_node.nic,
                    self.system.config.result_message_size,
                    tag=f"failure:{function}",
                )
                spans = self.system.spans
                if spans.enabled:
                    spans.record(
                        SpanKind.STATE_SYNC,
                        report_start,
                        self.env.now,
                        workflow=workflow,
                        invocation_id=invocation_id,
                        function=function,
                        node=self.node.name,
                        parent=spans.root_of(invocation_id),
                        role="failure-report",
                        dst=self.system.client_node.name,
                    )
                self.system.invocation_failed(
                    structure.workflow, invocation_id, function
                )
                return
            if result is None:
                # The execute process was cancelled (invocation abort or
                # node crash) and exited quietly; so do we.
                return
            context = self.system.context(invocation_id)
            if context is not None:
                context.record.cold_starts += result.cold_starts
                context.record.retries += result.retries
            if result.cold_starts:
                self.system.trace(
                    Kind.COLD_START, workflow, invocation_id,
                    function=function, node=self.node.name,
                    detail=str(result.cold_starts),
                )
        structure.invocation(invocation_id).state_of(function).executed = True
        self.system.trace(
            Kind.FUNCTION_EXECUTED, workflow, invocation_id,
            function=function, node=self.node.name,
        )
        self._propagate(structure, invocation_id, function)

    def _propagate(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
    ) -> None:
        """Fan out state updates (and sink reports) as detached processes.

        Deliberately yield-free: once a function is marked ``executed``
        its notifications are committed atomically, so a node crash can
        never leave a half-propagated function.  The spawned messages
        are registered *invocation-bound* (not node-bound) — they model
        packets already handed to the TCP stack, which survive the
        sender's crash but die with the invocation.
        """
        info = structure.info(function)
        if not info.successors:
            self.system.spawn_registered(
                self._report_sink(structure, invocation_id, function),
                invocation_id,
                name=f"sink-report:{function}",
            )
            return
        for successor in info.successors:
            target = info.successor_locations[successor]
            if target == self.node.name:
                self.system.spawn_registered(
                    self._notify_local(structure, invocation_id, successor),
                    invocation_id,
                    name=f"rpc:{function}->{successor}",
                )
            else:
                self.system.spawn_registered(
                    self._notify_remote(structure, invocation_id, successor, target),
                    invocation_id,
                    name=f"sync:{function}->{successor}",
                )

    def _report_sink(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A sink finished: report the execution state to the client."""
        report_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            self.system.client_node.nic,
            self.system.config.result_message_size,
            tag=f"sink:{function}",
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                report_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=function,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="sink-report",
                dst=self.system.client_node.name,
            )
        self.system.sink_completed(structure.workflow, invocation_id)

    def _notify_local(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
    ) -> Generator:
        yield self.env.timeout(self.system.config.local_trigger_time)
        yield from self.receive_state_update(
            structure.workflow, structure.version, invocation_id, successor
        )

    def _notify_remote(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        successor: str,
        target: str,
    ) -> Generator:
        remote_engine = self.system.engine(target)
        sync_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            self.system.config.state_message_size,
            tag=f"state:{successor}",
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=successor,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="state",
                dst=remote_engine.node.name,
            )
        remote_engine.states_synced += 1
        self.system.trace(
            Kind.STATE_SYNC, structure.workflow, invocation_id,
            function=successor, node=remote_engine.node.name,
            detail=f"from {self.node.name}",
        )
        yield from remote_engine.receive_state_update(
            structure.workflow, structure.version, invocation_id, successor
        )

    # -- crash and recovery ---------------------------------------------------
    def fail(self) -> list[tuple[str, int, InvocationID, str]]:
        """The node crashed: mark the engine down, collect lost tasks.

        Every local function that was triggered but had not finished
        executing is reset to untriggered and returned so the system
        can re-trigger it on recovery.  (``run_function`` marks a
        function executed and spawns its notifications in one atomic
        step, so ``executed`` functions never need replay.)
        """
        self.down = True
        self.crash_count += 1
        pending: list[tuple[str, int, InvocationID, str]] = []
        for (workflow, version), structure in self._structures.items():
            for invocation_id, inv_state in structure.invocation_items():
                for function, state in inv_state.functions.items():
                    if state.triggered and not state.executed:
                        state.triggered = False
                        pending.append(
                            (workflow, version, invocation_id, function)
                        )
        return pending

    def recover(self) -> None:
        """The node came back: replay the control backlog.

        Deferred messages re-enter through the normal handlers (each
        paying an engine step, like a real backlog drain would).
        """
        self.down = False
        deferred, self._deferred = self._deferred, []
        for kind, workflow, version, invocation_id, function in deferred:
            if (
                self.system.context(invocation_id) is None
                or not self.has_structure(workflow, version)
            ):
                continue  # the invocation died while we were down
            handler = (
                self.receive_state_update
                if kind == "update"
                else self.trigger_source
            )
            self.system.spawn_registered(
                handler(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"replay:{self.node.name}:{function}",
            )

    def retrigger(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> bool:
        """Re-run a task the crash killed, unless it already restarted."""
        structure = self.structure(workflow, version)
        state = structure.invocation(invocation_id).state_of(function)
        if state.triggered or state.executed:
            return False  # a replayed control message beat us to it
        state.triggered = True
        self.system.spawn_registered(
            self.run_function(workflow, version, invocation_id, function),
            invocation_id,
            node=self.node.name,
            name=f"retrigger:{self.node.name}:{function}",
        )
        return True


class FaaSFlowSystem:
    """The WorkerSP workflow system: graph-partitioned distributed engines."""

    mode = "worker-sp"
    # Telemetry/SLO label for record_invocation_metrics; subclasses with
    # a different triggering paradigm (DataflowSP) override both.
    engine_label = "worker-sp"
    engine_class = WorkerEngine

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        policy: Optional[DataPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.spans = cluster.spans
        self.telemetry = cluster.telemetry
        self.metrics = metrics if metrics is not None else MetricsCollector()
        if self.spans.enabled:
            self.metrics.spans = self.spans
        self.policy = policy or FaaStorePolicy(cluster, self.metrics)
        self.registry = ProcessRegistry()
        self.runtime = FunctionRuntime(
            cluster, self.config, self.policy, faults=faults,
            registry=self.registry,
        )
        # The master node doubles as the invoking client (paper §5.1).
        self.client_node = cluster.storage_node
        self.engines: dict[str, WorkerEngine] = {
            worker.name: self.engine_class(self, worker)
            for worker in cluster.workers
        }
        self._deployed: dict[tuple[str, int], _DeployedWorkflow] = {}
        self._current_version: dict[str, int] = {}
        self._contexts: dict[InvocationID, _InvocationContext] = {}
        self.node_crashes = 0
        self.retriggered = 0
        # node name -> tasks lost to a crash, re-triggered on recovery.
        self._crash_pending: dict[
            str, list[tuple[str, int, InvocationID, str]]
        ] = {}

    def spawn_registered(
        self,
        generator: Generator,
        invocation_id: InvocationID,
        node: str = "",
        name: str = "",
    ):
        """Spawn a process and track it for cancellation.

        ``node`` binds the process to a worker so node crashes kill it;
        processes left unbound (in-flight messages) die only with their
        invocation.
        """
        process = self.env.process(generator, name=name)
        self.registry.register(process, invocation_id, node=node)
        return process

    # -- deployment ---------------------------------------------------------
    def engine(self, worker_name: str) -> WorkerEngine:
        try:
            return self.engines[worker_name]
        except KeyError:
            raise KeyError(f"no engine on {worker_name!r}") from None

    def deploy(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        quotas: Optional[dict[str, float]] = None,
        prewarm: int = 0,
        container_limits: Optional[dict[str, float]] = None,
    ) -> None:
        """Distribute sub-graphs to the worker engines (one version).

        ``quotas`` (worker name -> bytes, from the scheduler's
        reclamation pass) pins each node's FaaStore pool; omit it to
        leave the pools unchanged.  ``prewarm`` starts that many
        containers per function on its placed worker so first
        invocations skip the cold start.  Re-deploying an
        already-deployed workflow performs a red-black rollout: the new
        version becomes current immediately, old versions drain and are
        retired once their invocations finish.
        """
        dag.validate()
        placement.validate_against(dag)
        if quotas is not None:
            for worker in self.cluster.workers:
                worker.set_faastore_quota(
                    quotas.get(worker.name, 0.0), workflow=dag.name
                )
        if container_limits:
            # Fig. 10(b): the reclaimed memory physically comes out of
            # each function's own containers.
            for function, limit in container_limits.items():
                worker = self.cluster.node(placement.node_of(function))
                worker.containers.set_function_limit(function, limit)
        previous = self._current_version.get(dag.name)
        version = (previous or 0) + 1
        placement = placement.with_version(version)
        for worker_name, engine in self.engines.items():
            local = placement.functions_on(worker_name)
            if local:
                engine.deploy(
                    WorkflowStructure(dag, placement, local, version=version)
                )
        if prewarm > 0:
            for node in dag.real_nodes():
                worker = self.cluster.node(placement.node_of(node.name))
                instances = max(1, int(round(node.map_factor))) * prewarm
                worker.containers.prewarm(
                    node.name, count=instances, version=version
                )
        self._deployed[(dag.name, version)] = _DeployedWorkflow(
            dag=dag,
            placement=placement,
            critical_exec=static_critical_exec(dag),
        )
        self._current_version[dag.name] = version
        if previous is not None:
            self._try_retire(dag.name, previous)

    def current_version(self, workflow: str) -> int:
        try:
            return self._current_version[workflow]
        except KeyError:
            raise KeyError(f"workflow {workflow!r} is not deployed") from None

    def deployed(self, workflow: str, version: Optional[int] = None):
        if version is None:
            version = self.current_version(workflow)
        return self._deployed[(workflow, version)]

    def _try_retire(self, workflow: str, version: int) -> None:
        deployed = self._deployed.get((workflow, version))
        if deployed is None or deployed.live_invocations > 0:
            return
        if version == self._current_version.get(workflow):
            return
        del self._deployed[(workflow, version)]
        for engine in self.engines.values():
            engine.retire(workflow, version)

    # -- invocation ----------------------------------------------------------
    def context(self, invocation_id: InvocationID) -> Optional[_InvocationContext]:
        return self._contexts.get(invocation_id)

    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one end-to-end invocation (client side)."""
        version = self.current_version(workflow)
        deployed = self._deployed[(workflow, version)]
        dag, placement = deployed.dag, deployed.placement
        invocation_id = new_invocation_id()
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=self.env.now,
            critical_path_exec=deployed.critical_exec,
        )
        context = _InvocationContext(
            record=record,
            version=version,
            sinks_remaining=len(dag.sinks()),
            all_done=self.env.event(),
            failed=self.env.event(),
        )
        self._contexts[invocation_id] = context
        deployed.live_invocations += 1
        self.trace(Kind.INVOCATION_START, workflow, invocation_id)
        if self.spans.enabled:
            self.spans.start_invocation(
                invocation_id, workflow=workflow, mode=self.mode
            )
        # The client ships the invocation request to each entry
        # function's worker; from there everything is worker-side.
        for source in dag.sources():
            self.spawn_registered(
                self._send_invocation(
                    workflow, version, invocation_id, source, placement
                ),
                invocation_id,
                name=f"invoke:{workflow}:{source}",
            )
        timeout = self.env.timeout(self.config.execution_timeout)
        yield self.env.any_of([context.all_done, context.failed, timeout])
        # Check failure *before* completion: when a failure report and
        # the last sink report land in the same timestep, the failure
        # must win (sink_completed also refuses to count sinks after a
        # failure, so all_done can't even trigger then).
        if context.failed.triggered:
            record.status = InvocationStatus.FAILED
            record.finished_at = self.env.now
        elif context.all_done.triggered:
            record.finished_at = self.env.now
        else:
            record.status = InvocationStatus.TIMEOUT
            record.finished_at = record.started_at + self.config.execution_timeout
        if not timeout.processed:
            # Cancel the watchdog so the kernel heap doesn't accumulate
            # one 60-second timer per completed invocation.
            timeout.cancel()
        if record.status != InvocationStatus.OK:
            cancelled = self.registry.cancel_invocation(
                invocation_id,
                CancelCause(CancelKind.INVOCATION_ABORT, detail=record.status),
            )
            if cancelled:
                self.trace(
                    Kind.CANCELLED, workflow, invocation_id,
                    detail=f"{cancelled} process(es)",
                )
        self.registry.release_invocation(invocation_id)
        self.policy.cleanup_invocation(dag, invocation_id)
        self.metrics.record_invocation(record)
        if self.telemetry.enabled:
            record_invocation_metrics(
                self.telemetry, record, self.config.tenant, self.engine_label
            )
        self.trace(
            Kind.INVOCATION_END, workflow, invocation_id, detail=record.status
        )
        if self.spans.enabled:
            root = self.spans.root_of(invocation_id)
            if root is not None:
                self.spans.end(root, status=record.status)
        self._contexts.pop(invocation_id, None)
        # Release the per-invocation *State* objects on every engine
        # that holds a sub-graph of this workflow (paper §4.2.1).
        for engine in self.engines.values():
            if engine.has_structure(workflow, version):
                engine.structure(workflow, version).release_invocation(
                    invocation_id
                )
        deployed.live_invocations -= 1
        if version != self._current_version.get(workflow):
            self._try_retire(workflow, version)
        return record

    def _send_invocation(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        source: str,
        placement: Placement,
    ) -> Generator:
        engine = self.engine(placement.node_of(source))
        send_start = self.env.now
        yield self.network.message(
            self.client_node.nic,
            engine.node.nic,
            self.config.assign_message_size,
            tag=f"invoke:{source}",
        )
        if self.spans.enabled:
            self.spans.record(
                SpanKind.STATE_SYNC,
                send_start,
                self.env.now,
                workflow=workflow,
                invocation_id=invocation_id,
                function=source,
                node=self.client_node.name,
                parent=self.spans.root_of(invocation_id),
                role="invoke",
                dst=engine.node.name,
            )
        yield from engine.trigger_source(workflow, version, invocation_id, source)

    def trace(self, kind: str, workflow: str, invocation_id: InvocationID,
              function: str = "", node: str = "", detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, kind, workflow, invocation_id,
                function=function, node=node, detail=detail,
            )

    def invocation_failed(
        self, workflow: str, invocation_id: InvocationID, function: str
    ) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # already timed out / torn down
        if context.failed is not None and not context.failed.triggered:
            context.failed.succeed(function)

    def sink_completed(self, workflow: str, invocation_id: InvocationID) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # invocation already timed out and was torn down
        if context.failed is not None and context.failed.triggered:
            return  # already failed; a late sink can't resurrect it
        context.sinks_remaining -= 1
        if context.sinks_remaining == 0 and not context.all_done.triggered:
            context.all_done.succeed()

    # -- fault hooks (called by FaultDriver) ----------------------------------
    def on_node_crash(self, node_name: str) -> None:
        """WorkerSP recovery: engine-level re-triggering.

        The crashed node's tasks are killed with the *terminal*
        NODE_STOP cause — its engine is gone, so there is no runtime
        left to retry inside.  Instead the engine records which local
        functions were lost and re-triggers them when the node (and its
        sub-graph state) comes back.
        """
        engine = self.engines.get(node_name)
        if engine is None:
            return
        cancelled = self.registry.cancel_node(
            node_name, CancelCause(CancelKind.NODE_STOP, detail=node_name)
        )
        pending = engine.fail()
        if pending:
            self._crash_pending.setdefault(node_name, []).extend(pending)
        self.node_crashes += 1
        self.trace(
            Kind.NODE_CRASH, "", 0, node=node_name,
            detail=f"killed {cancelled} process(es), lost {len(pending)} task(s)",
        )

    def on_node_recovery(self, node_name: str) -> None:
        engine = self.engines.get(node_name)
        if engine is None:
            return
        # First drain the control messages that queued during the
        # outage (they may re-trigger some lost tasks themselves)...
        engine.recover()
        # ...then re-trigger whatever the crash killed and nothing has
        # restarted yet, for invocations that are still alive.
        retriggered = 0
        for workflow, version, invocation_id, function in self._crash_pending.pop(
            node_name, []
        ):
            if (
                invocation_id not in self._contexts
                or not engine.has_structure(workflow, version)
            ):
                continue
            if engine.retrigger(workflow, version, invocation_id, function):
                retriggered += 1
        self.retriggered += retriggered
        self.trace(
            Kind.NODE_RECOVERY, "", 0, node=node_name,
            detail=f"retriggered {retriggered} task(s)",
        )

"""Observability: causal spans, resource telemetry, trace exporters.

The measurement layer the paper's analysis needs (§2.3, §5): every
invocation becomes a span tree with per-stage child spans, the
simulation substrate contributes node-track spans (network transfers,
container lifecycle, FaaStore spills), and time-series samplers
snapshot per-node resources on a simulated-time cadence.  Traces export
as Chrome trace-event JSON (Perfetto / ``chrome://tracing``) and JSONL,
inspected with the ``faasflow-trace`` CLI.

Tracing is opt-in and zero-cost when disabled: producers hold the
:data:`NULL_SPANS` singleton whose methods are no-ops.

Streaming telemetry (:mod:`repro.obs.telemetry`) is the constant-memory
counterpart: a :class:`MetricsRegistry` of counters, gauges, and
log-bucketed mergeable histograms keyed by labeled dimensions, windowed
on simulated time, with the same zero-cost-off guarantee
(:data:`NULL_TELEMETRY`) and a deterministic merge so sharded runs
aggregate value-identically to single-process runs.  SLO targets are
evaluated over snapshots with :class:`SLOTracker`.
"""

from .export import (
    chrome_trace,
    export_trace,
    read_spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .sampler import (
    ResourceSampler,
    Sample,
    read_samples_csv,
    write_samples_csv,
)
from .slo import (
    SLOReport,
    SLOTarget,
    SLOTracker,
    load_targets,
)
from .spans import (
    BREAKDOWN_COMPONENTS,
    NULL_SPANS,
    NullSpanTracer,
    Span,
    SpanKind,
    SpanTracer,
    category_of,
    decompose,
    format_span_tree,
    span_tree,
)
from .telemetry import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
    read_telemetry_json,
    validate_snapshot,
    write_telemetry_json,
)

__all__ = [
    "BREAKDOWN_COMPONENTS",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "NullRegistry",
    "NullSpanTracer",
    "SLOReport",
    "SLOTarget",
    "SLOTracker",
    "ResourceSampler",
    "Sample",
    "Span",
    "SpanKind",
    "SpanTracer",
    "category_of",
    "chrome_trace",
    "decompose",
    "export_trace",
    "format_span_tree",
    "load_targets",
    "merge_snapshots",
    "read_samples_csv",
    "read_spans_jsonl",
    "read_telemetry_json",
    "span_tree",
    "validate_chrome_trace",
    "validate_snapshot",
    "write_chrome_trace",
    "write_samples_csv",
    "write_spans_jsonl",
    "write_telemetry_json",
]

"""Shared fixtures for observability tests."""

import pytest

from repro.obs import SpanTracer
from repro.sim import Cluster, ClusterConfig, ContainerSpec, Environment

MB = 1024.0 * 1024.0


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    """Small fast cluster: 3 workers, short cold starts."""
    config = ClusterConfig(
        workers=3,
        container=ContainerSpec(cold_start_time=0.1),
        storage_bandwidth=50 * MB,
    )
    return Cluster(env, config)


@pytest.fixture
def traced_cluster(env, cluster):
    """The same cluster with a span tracer installed on its producers."""
    tracer = SpanTracer(env)
    cluster.install_spans(tracer)
    return cluster, tracer

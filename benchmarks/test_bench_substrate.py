"""Micro-benches of the simulation substrate itself.

Experiment wall time is dominated by the event kernel, the network
rebalancer, and Algorithm 1 — these benches watch their costs so a
regression in the substrate is visible independently of the
experiments.
"""

from repro.dag import estimate_edge_weights
from repro.core import GroupingConfig, group_functions
from repro.sim import Cluster, ClusterConfig, Environment, MB, Network, NetworkConfig
from repro.workloads import genome, layered_random


def test_bench_kernel_event_throughput(benchmark):
    """Schedule and process 100k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(100_000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 99.9


def test_bench_kernel_process_switching(benchmark):
    """1000 processes ping-ponging through a shared store."""

    def run():
        from repro.sim import Store

        env = Environment()
        store = Store(env)
        done = []

        def producer(env, store):
            for i in range(1000):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(1000):
                item = yield store.get()
                done.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        return len(done)

    assert benchmark(run) == 1000


def test_bench_network_fair_share_rebalancing(benchmark):
    """200 staggered flows into one link: every arrival rebalances."""

    def run():
        env = Environment()
        net = Network(env, NetworkConfig(latency=0.0, message_threshold=0.0))
        dst = net.attach("dst", 100 * MB)
        sources = [net.attach(f"s{i}", 100 * MB) for i in range(200)]

        def starter(env, net):
            events = []
            for i, src in enumerate(sources):
                yield env.timeout(0.001)
                events.append(net.transfer(src, dst, 2 * MB))
            yield env.all_of(events)

        proc = env.process(starter(env, net))
        env.run(until=proc)
        return net.total_bytes

    total = benchmark(run)
    assert total == 200 * 2 * MB


def test_bench_grouping_200_nodes(benchmark):
    """Algorithm 1 on a 200-node Genome (the fig16 heavy point)."""
    dag = genome(nodes=200)
    for node in dag.real_nodes():
        node.memory = 64 * 1024 * 1024
    estimate_edge_weights(dag, bandwidth=50 * MB)
    workers = [f"w{i}" for i in range(7)]
    config = GroupingConfig(
        workers=workers,
        node_capacity={w: 128.0 for w in workers},
        quota=float("inf"),
        max_group_instances=10.0,
    )
    result = benchmark(group_functions, dag, config)
    assert sum(len(g) for g in result.groups) == len(dag.node_names)


def test_bench_full_invocation_path(benchmark):
    """One warm FaaSFlow invocation of a 16-node random workflow."""
    from repro.clients import run_closed_loop
    from repro.core import EngineConfig, FaaSFlowSystem, hash_partition

    env = Environment()
    cluster = Cluster(env, ClusterConfig(workers=3))
    system = FaaSFlowSystem(cluster, EngineConfig(ship_data=True))
    dag = layered_random(layers=4, width=4, seed=5)
    system.deploy(dag, hash_partition(dag, cluster.worker_names()))
    for worker in cluster.workers:
        worker.set_faastore_quota(512 * MB, workflow=dag.name)
    run_closed_loop(system, dag.name, 1)  # warm containers

    def one_invocation():
        return run_closed_loop(system, dag.name, 1)[0]

    record = benchmark(one_invocation)
    assert record.status == "ok"

"""Edge-case tests for the fluid network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.network import KB, MB, Network, NetworkConfig


def make_net(latency=0.0, threshold=0.0, **extra):
    env = Environment()
    net = Network(
        env,
        NetworkConfig(latency=latency, message_threshold=threshold, **extra),
    )
    return env, net


class TestBandwidthReconfiguration:
    def test_mid_flow_bandwidth_change_applies_on_next_event(self):
        """A reconfigured NIC affects flows that rebalance afterwards."""
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 10 * MB)
        first = net.transfer(a, b, 10 * MB)

        def upgrade(env, net):
            yield env.timeout(0.5)
            b.set_bandwidth(20 * MB)
            # A new flow forces a rebalance at the new capacity.
            yield net.transfer(a, b, 1 * MB)

        env.process(upgrade(env, net))
        env.run(until=first)
        # First half at 10 MB/s (0.5 s); then 11 MB of remaining work
        # total at 20 MB/s shared — strictly faster than 1.0 s total.
        assert env.now < 1.05

    def test_wondershaper_style_throttle(self):
        env, net = make_net()
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        b.set_bandwidth(25 * MB)
        done = net.transfer(a, b, 25 * MB)
        env.run(until=done)
        assert env.now == pytest.approx(1.0, rel=1e-6)


class TestRecordLimits:
    def test_record_limit_caps_ledger(self):
        env, net = make_net(extra={})
        net.config.record_limit = 5
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        for _ in range(10):
            env.run(until=net.transfer(a, b, 1 * MB))
        assert len(net.records) == 5
        # Counters keep going even when the ledger is full.
        assert net.total_bytes == pytest.approx(10 * MB)

    def test_record_transfers_disabled(self):
        env, net = make_net()
        net.config.record_transfers = False
        a = net.attach("a", 100 * MB)
        b = net.attach("b", 100 * MB)
        env.run(until=net.transfer(a, b, 1 * MB))
        assert net.records == []
        assert net.total_bytes == pytest.approx(1 * MB)


class TestManyFlows:
    def test_hundred_simultaneous_flows_complete(self):
        env, net = make_net()
        dst = net.attach("dst", 100 * MB)
        events = []
        for i in range(100):
            src = net.attach(f"s{i}", 100 * MB)
            events.append(net.transfer(src, dst, 1 * MB))
        env.run(until=env.all_of(events))
        assert env.now == pytest.approx(1.0, rel=1e-4)
        assert net.active_flow_count == 0

    def test_bidirectional_flows_use_both_directions(self):
        """a->b and b->a do not share a link (full duplex)."""
        env, net = make_net()
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        f1 = net.transfer(a, b, 10 * MB)
        f2 = net.transfer(b, a, 10 * MB)
        env.run(until=env.all_of([f1, f2]))
        assert env.now == pytest.approx(1.0, rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.1 * MB, max_value=20 * MB),
            min_size=2,
            max_size=8,
        ),
        stagger=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_staggered_arrivals_conserve_bytes(self, sizes, stagger):
        env, net = make_net()
        dst = net.attach("dst", 25 * MB)
        sources = [net.attach(f"s{i}", 100 * MB) for i in range(len(sizes))]

        def starter(env, net):
            events = []
            for src, size in zip(sources, sizes):
                events.append(net.transfer(src, dst, size))
                yield env.timeout(stagger)
            yield env.all_of(events)

        env.run(until=env.process(starter(env, net)))
        assert net.total_bytes == pytest.approx(sum(sizes), rel=1e-9)
        assert net.active_flow_count == 0


class TestMessagePath:
    def test_threshold_boundary(self):
        env = Environment()
        net = Network(env, NetworkConfig(message_threshold=64 * KB))
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        net.transfer(a, b, 64 * KB)  # at the threshold: message path
        assert net.active_flow_count == 0
        net.transfer(a, b, 64 * KB + 1)  # above: fluid path
        assert net.active_flow_count == 1

    def test_message_counter(self):
        env, net = make_net(latency=0.001)
        a = net.attach("a", 10 * MB)
        b = net.attach("b", 10 * MB)
        for _ in range(5):
            env.run(until=net.message(a, b))
        assert net.message_count == 5

"""Workflow DAG core: structure and analysis."""

from .analysis import CriticalPath, critical_path, estimate_edge_weights, path_length
from .graph import DataEdge, DAGError, FunctionNode, WorkflowDAG
from .interop import from_networkx, to_dot, to_networkx

__all__ = [
    "CriticalPath",
    "critical_path",
    "DataEdge",
    "DAGError",
    "estimate_edge_weights",
    "from_networkx",
    "FunctionNode",
    "path_length",
    "to_dot",
    "to_networkx",
    "WorkflowDAG",
]

"""Fault tolerance: fault models, retry policy, and cancellation.

Real FaaS deployments fail in more ways than a single crashed function
attempt, and a workflow engine is defined by how it behaves when they
do.  This module is the fault-tolerance layer shared by both schedule
patterns:

- :class:`FaultInjector` — per-attempt function crashes with
  configurable probabilities (deterministic under its seed).
- :class:`NodeCrash` / :class:`NetworkDegradation` / :class:`FaultPlan`
  — scripted infrastructure faults: a worker node dies (every container
  on it is destroyed, in-flight tasks fail) and later recovers, or a
  node's NIC runs at a fraction of its bandwidth for a window.  Plans
  are plain data, so a run is exactly replayable; :meth:`FaultPlan.random`
  derives one deterministically from a seed.
- :class:`FaultDriver` — the simulation process that executes a plan
  against a cluster and notifies the attached workflow systems.
- :class:`RetryPolicy` — exponential backoff with deterministic jitter
  and the retry budget, built from :class:`~repro.core.config.EngineConfig`.
- :class:`ProcessRegistry` — tracks every live kernel process an
  invocation spawned (tagged with the node it runs on) so the engines
  can cancel them via ``Process.interrupt`` when the invocation fails,
  times out, or its node dies.
- :class:`CancelCause` / :class:`TaskCancelled` — why a task was
  interrupted, and whether the retry ladder may try again.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..obs.spans import SpanKind
from ..sim.kernel import Interrupt, Process

__all__ = [
    "CancelCause",
    "CancelKind",
    "FaultDriver",
    "FaultInjector",
    "FaultPlan",
    "FunctionFailure",
    "NetworkDegradation",
    "NodeCrash",
    "ProcessRegistry",
    "RetryPolicy",
    "TaskCancelled",
    "cause_of_interrupt",
]


class FunctionFailure(Exception):
    """A function task exhausted its retries."""

    def __init__(self, function: str, attempts: int):
        super().__init__(
            f"function {function!r} failed after {attempts} attempt(s)"
        )
        self.function = function
        self.attempts = attempts


class CancelKind:
    """Why a running task process was interrupted."""

    INVOCATION_ABORT = "invocation-abort"  # invocation failed or timed out
    SIBLING_FAILED = "sibling-failed"  # a foreach sibling exhausted retries
    STRAGGLER = "straggler-timeout"  # per-attempt timeout: kill and retry
    NODE_CRASH = "node-crash"  # node died; the attempt may retry elsewhere
    NODE_STOP = "node-stop"  # node died; engine-level recovery re-triggers


@dataclass(frozen=True)
class CancelCause:
    """Attached to ``Process.interrupt`` so the task knows why it died."""

    kind: str
    detail: str = ""

    @property
    def retryable(self) -> bool:
        """Whether the task's own retry ladder should absorb this.

        Straggler kills and MasterSP node crashes count against the
        retry budget and run again; everything else is terminal for the
        task (the invocation is over, or WorkerSP's engine-level
        recovery owns the re-trigger).
        """
        return self.kind in (CancelKind.STRAGGLER, CancelKind.NODE_CRASH)


class TaskCancelled(Exception):
    """A task process was interrupted; carries the :class:`CancelCause`."""

    def __init__(self, cause: CancelCause):
        super().__init__(cause.kind if cause.detail == "" else
                         f"{cause.kind}: {cause.detail}")
        self.cause = cause


def cause_of_interrupt(interrupt: Interrupt) -> CancelCause:
    """Normalize an :class:`Interrupt`'s cause to a :class:`CancelCause`."""
    cause = interrupt.cause
    if isinstance(cause, CancelCause):
        return cause
    return CancelCause(CancelKind.INVOCATION_ABORT, detail=str(cause or ""))


class FaultInjector:
    """Decides which function executions crash.

    ``default_rate`` applies to every function; ``rates`` overrides it
    per function.  Sampling is deterministic under ``seed``.
    """

    def __init__(
        self,
        default_rate: float = 0.0,
        rates: Optional[dict[str, float]] = None,
        seed: int = 99,
    ):
        if not 0.0 <= default_rate <= 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        self.default_rate = default_rate
        self.rates = dict(rates or {})
        for function, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for {function!r} must be in [0, 1], got {rate}"
                )
        self._rng = random.Random(seed)
        self.injected = 0

    def rate_for(self, function: str) -> float:
        return self.rates.get(function, self.default_rate)

    def should_crash(self, function: str) -> bool:
        """Sample whether this execution attempt crashes."""
        rate = self.rate_for(function)
        if rate <= 0.0:
            return False
        crashed = self._rng.random() < rate
        if crashed:
            self.injected += 1
        return crashed


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget plus exponential backoff with deterministic jitter.

    The delay before retry ``attempt`` (1-based: the wait after the
    first failed attempt is ``delay(1)``) is::

        min(backoff_max, backoff_base * backoff_factor ** (attempt - 1))

    scaled by ``1 ± jitter`` where the jitter fraction is derived by
    hashing ``(seed, key, attempt)`` — not drawn from a shared RNG — so
    the schedule for one task never depends on how sibling tasks
    interleave, and a run replays bit-identically under its seed.
    """

    max_retries: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.0
    seed: int = 17

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < 0:
            raise ValueError("backoff_max must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        return cls(
            max_retries=config.max_retries,
            backoff_base=config.retry_backoff_base,
            backoff_factor=config.retry_backoff_factor,
            backoff_max=config.retry_backoff_max,
            jitter=config.retry_jitter,
            seed=config.retry_seed,
        )

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def _fraction(self, attempt: int, key: Sequence) -> float:
        payload = repr((self.seed, tuple(key), attempt)).encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, attempt: int, key: Sequence = ()) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.backoff_base <= 0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * self._fraction(attempt, key) - 1.0)
        return delay


@dataclass(frozen=True)
class NodeCrash:
    """One scripted worker-node failure.

    At ``at`` every container on ``node`` dies (in-flight tasks fail,
    queued acquires stall) and the node stays down for ``recovery``
    seconds before coming back empty (everything cold-starts again).
    """

    node: str
    at: float
    recovery: float = 5.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be >= 0")
        if self.recovery <= 0:
            raise ValueError("recovery must be > 0")


@dataclass(frozen=True)
class NetworkDegradation:
    """A transient bandwidth brown-out window.

    From ``start`` for ``duration`` seconds the NICs of ``nodes``
    (every node in the plan's cluster when empty) run at ``factor``
    of their configured bandwidth; active flows re-share immediately.
    """

    start: float
    duration: float
    factor: float
    nodes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


@dataclass
class FaultPlan:
    """A replayable script of infrastructure faults."""

    node_crashes: list[NodeCrash] = field(default_factory=list)
    degradations: list[NetworkDegradation] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        nodes: Iterable[str],
        horizon: float,
        crashes: int = 1,
        recovery: float = 5.0,
        degradations: int = 0,
        degradation_duration: float = 5.0,
        degradation_factor: float = 0.25,
        seed: int = 7,
    ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        Crash and degradation start times are uniform over the middle
        80% of ``horizon`` so faults land while work is in flight.
        """
        names = sorted(nodes)
        if not names:
            raise ValueError("need at least one node to plan faults for")
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        rng = random.Random(seed)
        plan = cls()
        for _ in range(crashes):
            plan.node_crashes.append(
                NodeCrash(
                    node=rng.choice(names),
                    at=rng.uniform(0.1 * horizon, 0.9 * horizon),
                    recovery=recovery,
                )
            )
        for _ in range(degradations):
            plan.degradations.append(
                NetworkDegradation(
                    start=rng.uniform(0.1 * horizon, 0.9 * horizon),
                    duration=degradation_duration,
                    factor=degradation_factor,
                )
            )
        plan.node_crashes.sort(key=lambda c: c.at)
        plan.degradations.sort(key=lambda d: d.start)
        return plan


class ProcessRegistry:
    """Live kernel processes of in-flight invocations, by node.

    Engines register every process they spawn for an invocation
    (trigger handlers, execute/instance processes, notify/sync
    messengers).  When the invocation ends abnormally — or a node dies —
    the registry interrupts what is still alive.  Registration adds no
    callbacks to the processes (which would mask unhandled crashes);
    dead entries are dropped lazily and the whole invocation's map is
    released when the invocation record is finalized.
    """

    def __init__(self) -> None:
        # invocation id -> {process: node name ("" = not node-bound)}
        self._by_invocation: dict[int, dict[Process, str]] = {}
        self.cancelled = 0  # interrupts delivered, lifetime

    def register(self, process: Process, invocation_id: int, node: str = "") -> Process:
        if process.is_alive:
            procs = self._by_invocation.get(invocation_id)
            if procs is None:
                procs = self._by_invocation[invocation_id] = {}
            procs[process] = node
        return process

    def live(self, invocation_id: int) -> list[Process]:
        return [
            p for p in self._by_invocation.get(invocation_id, ()) if p.is_alive
        ]

    @property
    def live_count(self) -> int:
        return sum(
            1
            for procs in self._by_invocation.values()
            for p in procs
            if p.is_alive
        )

    @property
    def tracked_invocations(self) -> int:
        return len(self._by_invocation)

    def cancel_invocation(self, invocation_id: int, cause: CancelCause) -> int:
        """Interrupt every live process of one invocation; returns count."""
        interrupted = 0
        for process in self.live(invocation_id):
            process.interrupt(cause)
            interrupted += 1
        self.cancelled += interrupted
        return interrupted

    def cancel_node(self, node: str, cause: CancelCause) -> int:
        """Interrupt every live process bound to ``node``; returns count."""
        interrupted = 0
        for procs in self._by_invocation.values():
            for process, bound_node in list(procs.items()):
                if bound_node == node and process.is_alive:
                    process.interrupt(cause)
                    interrupted += 1
        self.cancelled += interrupted
        return interrupted

    def release_invocation(self, invocation_id: int) -> None:
        """Drop the bookkeeping once the invocation record is final."""
        self._by_invocation.pop(invocation_id, None)


class FaultDriver:
    """Executes a :class:`FaultPlan` against a cluster.

    Attach the workflow system(s) under test, then :meth:`start` before
    running the simulation.  Node crashes destroy every container on the
    node, take its pool offline, and notify each attached system
    (``on_node_crash`` / ``on_node_recovery``); degradation windows
    scale NIC bandwidths and restore them after.
    """

    def __init__(self, cluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.env = cluster.env
        self.systems: list = []
        self.node_crashes_fired = 0
        self.degradations_fired = 0
        self._started = False

    def attach(self, system) -> "FaultDriver":
        self.systems.append(system)
        return self

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for crash in self.plan.node_crashes:
            self.env.process(
                self._crash_process(crash), name=f"fault:crash:{crash.node}"
            )
        for window in self.plan.degradations:
            self.env.process(
                self._degrade_process(window),
                name=f"fault:degrade@{window.start:g}",
            )

    def _crash_process(self, crash: NodeCrash):
        yield self.env.timeout(max(0.0, crash.at - self.env.now))
        node = self.cluster.node(crash.node)
        if not node.up:
            return  # overlapping crash windows: already down
        spans = self.cluster.spans
        if spans.enabled:
            spans.event(
                SpanKind.FAULT, node=crash.node, fault="node-crash",
                recovery=crash.recovery,
            )
        node.fail()
        for system in self.systems:
            system.on_node_crash(crash.node)
        self.node_crashes_fired += 1
        yield self.env.timeout(crash.recovery)
        node.recover()
        if spans.enabled:
            spans.event(SpanKind.FAULT, node=crash.node, fault="node-recovery")
        for system in self.systems:
            system.on_node_recovery(crash.node)

    def _degrade_process(self, window: NetworkDegradation):
        yield self.env.timeout(max(0.0, window.start - self.env.now))
        if window.nodes:
            nodes = [self.cluster.node(name) for name in window.nodes]
        else:
            nodes = [*self.cluster.workers, self.cluster.storage_node]
        original = {node.name: node.nic.bandwidth for node in nodes}
        spans = self.cluster.spans
        for node in nodes:
            if spans.enabled:
                spans.event(
                    SpanKind.FAULT, node=node.name, fault="net-degrade",
                    factor=window.factor, duration=window.duration,
                )
            self.cluster.network.set_nic_bandwidth(
                node.nic, original[node.name] * window.factor
            )
        self.degradations_fired += 1
        yield self.env.timeout(window.duration)
        for node in nodes:
            self.cluster.network.set_nic_bandwidth(
                node.nic, original[node.name]
            )
            if spans.enabled:
                spans.event(SpanKind.FAULT, node=node.name, fault="net-restore")

"""Unit tests for the MasterSP baseline (HyperFlow-serverless)."""

import pytest

from repro.core import (
    EngineConfig,
    HyperFlowServerlessSystem,
    static_critical_exec,
)
from repro.dag import FunctionNode, WorkflowDAG
from repro.metrics import InvocationStatus

from .conftest import MB, all_on, fanout_dag, linear_dag, round_robin


def make_system(cluster, **config_kwargs):
    config_kwargs.setdefault("ship_data", False)
    return HyperFlowServerlessSystem(cluster, EngineConfig(**config_kwargs))


class TestStaticCriticalExec:
    def test_ignores_edge_weights(self):
        dag = linear_dag(n=3, service_time=0.1)
        for edge in dag.edges:
            edge.weight = 99.0
        assert static_critical_exec(dag) == pytest.approx(0.3)

    def test_parallel_branches_counted_once(self):
        dag = fanout_dag(branches=3)
        # head 0.05 + branch 0.1 + tail 0.05.
        assert static_critical_exec(dag) == pytest.approx(0.2)


class TestInvocation:
    def test_all_functions_execute(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3)
        system.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.OK
        assert record.latency > 0
        assert record.cold_starts == 3

    def test_latency_exceeds_critical_exec(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3)
        system.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.latency > record.critical_path_exec
        assert record.scheduling_overhead > 0

    def test_two_assign_and_result_messages_per_function(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=4)
        system.register(dag, round_robin(dag, cluster.worker_names()))
        env.run(until=env.process(system.invoke("lin")))
        assert system.messages_sent == 2 * 4

    def test_virtual_nodes_skip_network(self, env, cluster):
        system = make_system(cluster)
        dag = WorkflowDAG("v")
        dag.add_function("a", service_time=0.05)
        dag.add_node(FunctionNode(name="mid", is_virtual=True, service_time=0))
        dag.add_function("b", service_time=0.05)
        dag.add_edge("a", "mid")
        dag.add_edge("mid", "b")
        system.register(dag, all_on(dag, "worker-1"))
        record = env.run(until=env.process(system.invoke("v")))
        assert record.status == InvocationStatus.OK
        assert system.messages_sent == 4  # only a and b touch the network

    def test_parallel_branches_overlap(self, env, cluster):
        system = make_system(cluster)
        dag = fanout_dag(branches=4)
        system.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("fan")))
        # If branches serialized, latency would exceed 4 * 0.1 + 0.1.
        assert record.latency < 0.5 + 0.2 + 0.3

    def test_warm_second_invocation_is_faster(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag(n=3)
        system.register(dag, all_on(dag, "worker-0"))
        first = env.run(until=env.process(system.invoke("lin")))
        second = env.run(until=env.process(system.invoke("lin")))
        assert second.latency < first.latency
        assert second.cold_starts == 0

    def test_master_engine_serializes_under_fanout(self, env, cluster):
        """Wide fan-out pays per-function master processing serially."""
        wide = make_system(cluster, master_process_time=0.01)
        dag = fanout_dag(branches=8)
        wide.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(wide.invoke("fan")))
        # 8 branches x 2 engine steps x 10 ms serialized = 160 ms floor
        # beyond execution time.
        assert record.scheduling_overhead > 0.16

    def test_unregistered_workflow_rejected(self, env, cluster):
        system = make_system(cluster)
        with pytest.raises(KeyError):
            next(system.invoke("ghost"))


class TestTimeout:
    def test_slow_workflow_times_out(self, env, cluster):
        system = make_system(cluster, execution_timeout=0.5)
        dag = linear_dag(n=2, service_time=2.0)
        system.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        assert record.status == InvocationStatus.TIMEOUT
        assert record.latency == pytest.approx(0.5)


class TestMetricsIntegration:
    def test_invocations_recorded(self, env, cluster):
        system = make_system(cluster)
        dag = linear_dag()
        system.register(dag, all_on(dag, "worker-0"))
        for _ in range(3):
            env.run(until=env.process(system.invoke("lin")))
        assert len(system.metrics.invocations_of("lin")) == 3
        assert system.metrics.mean_scheduling_overhead("lin") > 0

    def test_data_shipping_records_transfers(self, env, cluster):
        system = HyperFlowServerlessSystem(
            cluster, EngineConfig(ship_data=True)
        )
        dag = linear_dag(output_size=2 * MB)
        system.register(dag, all_on(dag, "worker-0"))
        record = env.run(until=env.process(system.invoke("lin")))
        moved = system.metrics.data_moved("lin", record.invocation_id)
        # f0 and f1 outputs are put once and fetched once each; f2's
        # output is put but never fetched: 2 MB * 5 ops.
        assert moved == pytest.approx(10 * MB)

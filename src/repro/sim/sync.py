"""Synchronization primitives built on the simulation kernel.

Provides the queueing abstractions the cluster model needs:

- :class:`Resource` — a capacity-limited resource with FIFO request
  queueing (CPU cores, concurrent-connection limits).
- :class:`Store` — an unbounded or bounded FIFO object queue
  (task queues that containers pull work from).
- :class:`Level` — a continuous quantity that can be drawn down and
  refilled (memory pools, storage quotas).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .kernel import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "Level"]


class _Request(Event):
    """Pending acquisition of one resource slot.

    Usable as a context manager so callers release even on interrupt::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.env)
        self.resource = resource
        self.amount = amount

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """A counted resource with FIFO granting.

    >>> env = Environment()
    >>> cpu = Resource(env, capacity=2)
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[_Request] = deque()
        self._granted: set[int] = set()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, amount: int = 1) -> _Request:
        """Return an event that fires when ``amount`` slots are granted."""
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"request of {amount} outside [1, {self.capacity}]"
            )
        req = _Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def holds(self, request: _Request) -> bool:
        """Whether ``request`` has been granted and not yet released."""
        return id(request) in self._granted

    def release(self, request: _Request) -> None:
        """Return the slots held by ``request`` (idempotent)."""
        if id(request) in self._granted:
            self._granted.remove(id(request))
            self._in_use -= request.amount
            self._grant()
        else:
            self._cancel(request)

    def _cancel(self, request: _Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiting:
            head = self._waiting[0]
            if self._in_use + head.amount > self.capacity:
                break
            self._waiting.popleft()
            self._in_use += head.amount
            self._granted.add(id(head))
            head.succeed(head)


class _StoreGet(Event):
    __slots__ = ()


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class Store:
    """FIFO object queue with blocking ``get`` and (optionally) ``put``."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[_StoreGet] = deque()
        self._putters: deque[_StorePut] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(self._items)

    def put(self, item: Any) -> _StorePut:
        """Return an event that fires once ``item`` is enqueued."""
        put = _StorePut(self.env, item)
        self._putters.append(put)
        self._settle()
        return put

    def get(self) -> _StoreGet:
        """Return an event that fires with the next item."""
        get = _StoreGet(self.env)
        self._getters.append(get)
        self._settle()
        return get

    def cancel_get(self, get: _StoreGet) -> None:
        try:
            self._getters.remove(get)
        except ValueError:
            pass

    def _settle(self) -> None:
        moved = True
        while moved:
            moved = False
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                put = self._putters.popleft()
                self._items.append(put.item)
                put.succeed()
                moved = True
            while self._getters and self._items:
                get = self._getters.popleft()
                get.succeed(self._items.popleft())
                moved = True


class _LevelGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class Level:
    """A continuous quantity with blocking draw-down.

    ``get`` blocks until the requested amount is available; ``put`` never
    blocks but cannot exceed ``capacity``.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        initial: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        if initial < 0 or initial > capacity:
            raise SimulationError(
                f"initial level {initial} outside [0, {capacity}]"
            )
        self.env = env
        self.capacity = capacity
        self._level = float(initial)
        self._getters: deque[_LevelGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise SimulationError(f"cannot put negative amount {amount}")
        if self._level + amount > self.capacity + 1e-9:
            raise SimulationError(
                f"put of {amount} exceeds capacity {self.capacity} "
                f"(level {self._level})"
            )
        self._level = min(self.capacity, self._level + amount)
        self._settle()

    def get(self, amount: float) -> _LevelGet:
        if amount < 0:
            raise SimulationError(f"cannot get negative amount {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"get of {amount} can never be satisfied "
                f"(capacity {self.capacity})"
            )
        get = _LevelGet(self.env, amount)
        self._getters.append(get)
        self._settle()
        return get

    def try_get(self, amount: float) -> bool:
        """Non-blocking draw; returns whether it succeeded."""
        if amount < 0:
            raise SimulationError(f"cannot get negative amount {amount}")
        if self._getters or amount > self._level + 1e-9:
            return False
        self._level -= amount
        return True

    def _settle(self) -> None:
        while self._getters and self._getters[0].amount <= self._level + 1e-9:
            get = self._getters.popleft()
            self._level -= get.amount
            get.succeed(get.amount)

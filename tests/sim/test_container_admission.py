"""Tests for container-pool memory admission and cross-function serving.

Under open-loop overload, cold starts must queue on node memory rather
than crash it, and freed memory must serve the oldest waiter across
*all* functions — not just the freed container's own function.
"""

import pytest

from repro.sim.container import ContainerPool, ContainerSpec, ContainerState
from repro.sim.kernel import Environment
from repro.sim.resources import CPUAllocator, MemoryAccount

MB = 1024.0 * 1024.0


def make_pool(env, memory_mb, **spec_kwargs):
    defaults = dict(
        memory_limit=256 * MB,
        cold_start_time=0.1,
        keepalive=600.0,
        max_per_function=10,
    )
    defaults.update(spec_kwargs)
    spec = ContainerSpec(**defaults)
    cpu = CPUAllocator(env, cores=8)
    memory = MemoryAccount(env, capacity=memory_mb * MB)
    return ContainerPool(env, "worker-0", cpu, memory, spec)


@pytest.fixture
def env():
    return Environment()


class TestMemoryAdmission:
    def test_cold_start_queues_when_memory_full(self, env):
        pool = make_pool(env, memory_mb=512)  # room for 2 containers
        c1 = env.run(until=pool.acquire("fn-a"))
        c2 = env.run(until=pool.acquire("fn-b"))
        third = pool.acquire("fn-c")
        env.run(until=env.now + 1.0)
        assert not third.processed  # queued, not crashed
        pool.release(c1)
        # An idle same-function container exists but fn-c needs its own;
        # destroy it to free memory.
        pool.recycle_version("fn-a", version=1)
        env.run(until=env.now + 1.0)
        assert third.processed

    def test_never_overcommits_memory(self, env):
        pool = make_pool(env, memory_mb=768)  # 3 containers max
        acquisitions = [pool.acquire(f"fn-{i}") for i in range(6)]
        env.run(until=env.now + 5.0)
        granted = sum(1 for a in acquisitions if a.processed)
        assert granted == 3
        assert pool.memory.reserved <= 768 * MB + 1e-6

    def test_waiters_served_fifo_across_functions(self, env):
        pool = make_pool(env, memory_mb=256)  # exactly 1 container
        first = env.run(until=pool.acquire("fn-a"))
        order = []
        second = pool.acquire("fn-b")
        second.callbacks.append(lambda e: order.append("b"))
        third = pool.acquire("fn-c")
        third.callbacks.append(lambda e: order.append("c"))
        env.run(until=env.now + 0.5)
        assert order == []
        pool.release(first)
        pool.recycle_version("fn-a", version=1)  # free the memory
        env.run(until=env.now + 0.5)
        assert order == ["b"]  # oldest waiter first
        pool.release(second.value)
        pool.recycle_version("fn-b", version=1)
        env.run(until=env.now + 0.5)
        assert order == ["b", "c"]

    def test_same_function_waiter_reuses_released_container(self, env):
        pool = make_pool(env, memory_mb=256, max_per_function=1)
        first = env.run(until=pool.acquire("fn"))
        waiter = pool.acquire("fn")
        env.run(until=env.now + 0.2)
        assert not waiter.processed
        pool.release(first)
        env.run(until=env.now + 0.2)
        assert waiter.processed
        assert waiter.value is first  # warm handoff, no cold start

    def test_keepalive_expiry_frees_memory_for_waiters(self, env):
        pool = make_pool(env, memory_mb=256, keepalive=5.0)
        first = env.run(until=pool.acquire("fn-a"))
        pool.release(first)
        waiter = pool.acquire("fn-b")
        env.run(until=env.now + 1.0)
        assert not waiter.processed  # fn-a idle container holds memory
        env.run(until=env.now + 10.0)  # keep-alive expires fn-a
        assert waiter.processed

    def test_capacity_left_reflects_memory(self, env):
        pool = make_pool(env, memory_mb=512)
        assert pool.capacity_left("fn") == 2
        env.run(until=pool.acquire("fn"))
        assert pool.capacity_left("fn") == 1
        env.run(until=pool.acquire("other"))
        assert pool.capacity_left("fn") == 0


class TestFaaStorePoolInteraction:
    def test_faastore_pool_shrinks_container_headroom(self, env):
        from repro.sim import Cluster, ClusterConfig, NodeConfig

        env2 = Environment()
        cluster = Cluster(
            env2,
            ClusterConfig(
                workers=1,
                worker=NodeConfig(cores=8, memory=1024 * MB),
            ),
        )
        worker = cluster.workers[0]
        worker.set_faastore_quota(512 * MB)
        # Only 512 MB left for containers -> 2 slots.
        a1 = worker.containers.acquire("fn-a")
        a2 = worker.containers.acquire("fn-b")
        a3 = worker.containers.acquire("fn-c")
        env2.run(until=env2.now + 2.0)
        assert a1.processed and a2.processed
        assert not a3.processed

# FROZEN pre-PR copy for the engine-throughput A/B benchmark.
#
# Do not edit: this is the seed-side baseline that
# benchmarks/test_bench_engine.py races the live engines against.
# Imports of shared substrate (sim kernel, network, faults, policy,
# metrics) point at the live repro.* modules; the frozen modules
# (engines, state, runtime, clients) import each other relatively.

"""Workflow state structures (paper §3.1, Fig. 6).

Each worker engine maintains a *Workflow* structure per workflow it
hosts a sub-graph of: *FunctionInfo* (static metadata — predecessors
count, successor locations) plus per-invocation *State* (how many
predecessors have completed, whether the function has executed).  The
MasterSP baseline reuses the same structures, simply holding the whole
graph in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dag import DAGError, WorkflowDAG

__all__ = [
    "InvocationID",
    "FunctionInfo",
    "FunctionState",
    "InvocationState",
    "WorkflowStructure",
    "Placement",
    "PlacementError",
    "new_invocation_id",
    "reset_invocation_ids",
]

InvocationID = int

# The seed and live engines must draw from ONE id sequence so an A/B
# run produces directly comparable records; delegate to the live module.
from repro.core.state import new_invocation_id, reset_invocation_ids  # noqa: E402


class PlacementError(ValueError):
    """Inconsistent function-to-worker placement."""


@dataclass(frozen=True)
class Placement:
    """Where each function of a workflow runs (partition result).

    Maps every node name (virtual nodes included — they are bookkept by
    the engine owning their step) to a worker node name.
    """

    workflow: str
    assignment: dict[str, str]
    version: int = 1

    def node_of(self, function: str) -> str:
        try:
            return self.assignment[function]
        except KeyError:
            raise PlacementError(
                f"function {function!r} has no placement in {self.workflow!r}"
            ) from None

    def functions_on(self, worker: str) -> list[str]:
        return [f for f, w in self.assignment.items() if w == worker]

    def workers(self) -> list[str]:
        return sorted(set(self.assignment.values()))

    def colocated(self, fn_a: str, fn_b: str) -> bool:
        return self.node_of(fn_a) == self.node_of(fn_b)

    def validate_against(self, dag: WorkflowDAG) -> None:
        missing = [n for n in dag.node_names if n not in self.assignment]
        if missing:
            raise PlacementError(
                f"placement for {self.workflow!r} misses nodes: {missing}"
            )

    def with_version(self, version: int) -> "Placement":
        return Placement(self.workflow, dict(self.assignment), version)


@dataclass
class FunctionInfo:
    """Static metadata the engine needs to trigger one function."""

    name: str
    predecessors_count: int
    successors: list[str]
    successor_locations: dict[str, str]  # successor -> worker node name
    is_virtual: bool
    service_time: float
    memory: float
    output_size: float
    map_factor: float

    @classmethod
    def from_dag(
        cls, dag: WorkflowDAG, placement: Placement, name: str
    ) -> "FunctionInfo":
        node = dag.node(name)
        successors = dag.successors(name)
        return cls(
            name=name,
            predecessors_count=len(dag.predecessors(name)),
            successors=successors,
            successor_locations={s: placement.node_of(s) for s in successors},
            is_virtual=node.is_virtual,
            service_time=node.service_time,
            memory=node.memory,
            output_size=node.output_size,
            map_factor=node.map_factor,
        )


@dataclass
class FunctionState:
    """Per-invocation execution state of one function."""

    predecessors_done: int = 0
    triggered: bool = False
    executed: bool = False

    def mark_predecessor_done(self) -> None:
        self.predecessors_done += 1

    def ready(self, predecessors_count: int) -> bool:
        return (
            not self.triggered
            and self.predecessors_done >= predecessors_count
        )


@dataclass
class InvocationState:
    """All function states of one invocation within one engine."""

    invocation_id: InvocationID
    functions: dict[str, FunctionState] = field(default_factory=dict)

    def state_of(self, function: str) -> FunctionState:
        state = self.functions.get(function)
        if state is None:
            state = FunctionState()
            self.functions[function] = state
        return state

    def all_executed(self, names: list[str]) -> bool:
        return all(
            self.functions.get(n) is not None and self.functions[n].executed
            for n in names
        )


class WorkflowStructure:
    """The paper's per-worker *Workflow* structure.

    Holds *FunctionInfo* for the functions this engine owns and *State*
    per live invocation.  The engine releases an invocation's *State* at
    the end of the invocation (§4.2.1), and the whole structure is
    removed when its sub-graph version is retired.
    """

    def __init__(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        local_functions: list[str],
        version: int = 1,
    ):
        placement.validate_against(dag)
        unknown = [f for f in local_functions if not dag.has_node(f)]
        if unknown:
            raise DAGError(f"unknown local functions: {unknown}")
        self.workflow = dag.name
        self.dag = dag
        self.placement = placement
        self.version = version
        self.function_info: dict[str, FunctionInfo] = {
            name: FunctionInfo.from_dag(dag, placement, name)
            for name in local_functions
        }
        self._invocations: dict[InvocationID, InvocationState] = {}

    @property
    def local_functions(self) -> list[str]:
        return list(self.function_info)

    def owns(self, function: str) -> bool:
        return function in self.function_info

    def info(self, function: str) -> FunctionInfo:
        try:
            return self.function_info[function]
        except KeyError:
            raise DAGError(
                f"function {function!r} is not local to this engine"
            ) from None

    def invocation(self, invocation_id: InvocationID) -> InvocationState:
        state = self._invocations.get(invocation_id)
        if state is None:
            state = InvocationState(invocation_id)
            self._invocations[invocation_id] = state
        return state

    def release_invocation(self, invocation_id: InvocationID) -> None:
        """Free the *State* object at the end of an invocation (§4.2.1)."""
        self._invocations.pop(invocation_id, None)

    def invocation_items(self) -> list[tuple[InvocationID, InvocationState]]:
        """Snapshot of the live (invocation_id, state) pairs."""
        return list(self._invocations.items())

    @property
    def live_invocations(self) -> int:
        return len(self._invocations)

"""Fault injection: function crashes and engine retry semantics.

Real FaaS functions fail — OOM kills, runtime exceptions, node
pressure — and a workflow engine must retry them and, past a retry
budget, fail the invocation cleanly.  A :class:`FaultInjector` attached
to either system makes function instances crash with configurable
per-function probabilities (deterministic under its seed, so tests and
experiments are reproducible); the runtime destroys the crashed
container (its memory is freed, a fresh cold start follows on retry)
and the engine retries up to ``EngineConfig.max_retries`` times before
declaring the invocation failed.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["FaultInjector", "FunctionFailure"]


class FunctionFailure(Exception):
    """A function task exhausted its retries."""

    def __init__(self, function: str, attempts: int):
        super().__init__(
            f"function {function!r} failed after {attempts} attempt(s)"
        )
        self.function = function
        self.attempts = attempts


class FaultInjector:
    """Decides which function executions crash.

    ``default_rate`` applies to every function; ``rates`` overrides it
    per function.  Sampling is deterministic under ``seed``.
    """

    def __init__(
        self,
        default_rate: float = 0.0,
        rates: Optional[dict[str, float]] = None,
        seed: int = 99,
    ):
        if not 0.0 <= default_rate <= 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        self.default_rate = default_rate
        self.rates = dict(rates or {})
        for function, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for {function!r} must be in [0, 1], got {rate}"
                )
        self._rng = random.Random(seed)
        self.injected = 0

    def rate_for(self, function: str) -> float:
        return self.rates.get(function, self.default_rate)

    def should_crash(self, function: str) -> bool:
        """Sample whether this execution attempt crashes."""
        rate = self.rate_for(function)
        if rate <= 0.0:
            return False
        crashed = self._rng.random() < rate
        if crashed:
            self.injected += 1
        return crashed

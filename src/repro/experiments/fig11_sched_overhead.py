"""Fig. 11 — scheduling overhead: HyperFlow-serverless vs FaaSFlow.

The headline WorkerSP result (§5.2): same benchmarks, same closed-loop
client, both schedule patterns.  The paper reports the average overhead
dropping from 712 ms to 141.9 ms (scientific) and from 181.3 ms to
51.4 ms (real-world) — a 74.6 % average reduction.
"""

from __future__ import annotations

from ..clients import run_closed_loop
from ..workloads import ALL_BENCHMARKS, BENCHMARKS, build
from .common import (
    ExperimentResult,
    deploy_with_feedback,
    make_cluster,
    make_faasflow,
    make_hyperflow,
    register_hyperflow,
)

__all__ = ["run"]


def _mean_overhead_ms(records) -> float:
    warm = records[1:] or records
    return sum(r.scheduling_overhead for r in warm) / len(warm) * 1000


def run(invocations: int = 50, benchmarks: list[str] | None = None) -> ExperimentResult:
    names = benchmarks or ALL_BENCHMARKS
    rows = []
    reductions = []
    by_category: dict[str, dict[str, list[float]]] = {}
    for name in names:
        dag_master = build(name)
        cluster_m = make_cluster()
        hyper = make_hyperflow(cluster_m, ship_data=False)
        register_hyperflow(hyper, dag_master)
        master_overhead = _mean_overhead_ms(
            run_closed_loop(hyper, name, invocations)
        )

        dag_worker = build(name)
        cluster_w = make_cluster()
        faasflow, scheduler = make_faasflow(cluster_w, ship_data=False)
        # Inputs are pre-packed in the image (§2.3): the warm-up runs
        # measure no data transfers, so the feedback leaves every edge
        # weightless and Algorithm 1 correctly refuses to group — the
        # comparison is purely MasterSP vs WorkerSP triggering.
        deploy_with_feedback(faasflow, scheduler, dag_worker, warmup_invocations=2)
        worker_overhead = _mean_overhead_ms(
            run_closed_loop(faasflow, name, invocations)
        )

        reduction = 100 * (1 - worker_overhead / master_overhead)
        reductions.append(reduction)
        category = BENCHMARKS[name].category
        by_category.setdefault(category, {"master": [], "worker": []})
        by_category[category]["master"].append(master_overhead)
        by_category[category]["worker"].append(worker_overhead)
        rows.append(
            [
                BENCHMARKS[name].abbrev,
                round(master_overhead, 1),
                round(worker_overhead, 1),
                round(reduction, 1),
            ]
        )
    notes = [
        f"average overhead reduction: "
        f"{sum(reductions) / len(reductions):.1f}% (paper: 74.6%)"
    ]
    for category, paper_m, paper_w in (
        ("scientific", 712.0, 141.9),
        ("real-world", 181.3, 51.4),
    ):
        data = by_category.get(category)
        if data:
            mean_m = sum(data["master"]) / len(data["master"])
            mean_w = sum(data["worker"]) / len(data["worker"])
            notes.append(
                f"{category}: {mean_m:.1f} -> {mean_w:.1f} ms "
                f"(paper: {paper_m:.0f} -> {paper_w:.0f} ms)"
            )
    return ExperimentResult(
        experiment="fig11",
        title="Scheduling overhead: MasterSP vs WorkerSP",
        headers=[
            "benchmark",
            "HyperFlow-serverless (ms)",
            "FaaSFlow (ms)",
            "reduction (%)",
        ],
        rows=rows,
        notes=notes,
        data={"reductions": reductions, "by_category": by_category},
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()

"""FaaSFlow's WorkerSP: per-worker engines with local triggering (§3.1, §4.2).

Each worker node runs a :class:`WorkerEngine` holding the *Workflow*
structures (sub-graphs) the graph scheduler assigned to it.  When a
local function finishes, the engine inspects its successors: local ones
are triggered over an in-process RPC; remote ones receive a state
message over a worker-to-worker TCP connection.  No task assignment
ever crosses the network — the master only partitions graphs and
(acting as the client) receives the final execution state from the
sink functions' workers.

Serving-throughput design (ISSUE 10): deployment compiles each
``(workflow, version)`` sub-graph into a per-engine dispatch table
(:class:`_FnDispatch`) — dense function indices, pre-resolved successor
engines, and precomputed process names — so the per-invocation hot path
does no string formatting, no placement lookups, and no per-function
state allocation (state lives in :class:`CompiledInvocation` arrays).
A live triggered-not-executed index keeps crash collection O(in-flight)
and invocation state is retired the moment the invocation completes, so
engine memory tracks concurrency, not history.  With
``EngineConfig.batch_control`` the control messages emitted by one
engine step coalesce per destination into a single transfer and a
single remote engine wakeup (documented divergence; default off keeps
the frozen-seed event sequence bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from ..dag import WorkflowDAG
from ..metrics import (
    InvocationRecord,
    InvocationStatus,
    MetricsCollector,
)
from ..obs.spans import SpanKind
from ..obs.telemetry import record_invocation_metrics
from ..sim import Cluster, Node, Resource
from .config import EngineConfig
from .faastore import DataPolicy, FaaStorePolicy
from .faults import (
    CancelCause,
    CancelKind,
    FaultInjector,
    FunctionFailure,
    ProcessRegistry,
    TaskCancelled,
)
from .master_engine import static_critical_exec
from .runtime import FunctionRuntime
from .switching import is_skipped
from .state import (
    EXECUTED,
    TRIGGERED,
    InvocationID,
    Placement,
    WorkflowStructure,
    new_invocation_id,
)
from .tracing import Kind, Tracer

__all__ = ["WorkerEngine", "FaaSFlowSystem"]

# Sentinel value carried by ``_InvocationContext.done`` when the
# execution-timeout watchdog (not a sink report or failure) fired it.
_TIMED_OUT = object()


class _InvocationContext:
    """Client-side bookkeeping for one in-flight invocation.

    ``done`` is a single kernel event: it fires on the last sink report
    *or* on the first failure (``failed`` records the failing function).
    The invoke process checks ``failed`` before completion, so when both
    land in the same timestep the failure wins — same semantics as the
    former two-event scheme with one event fewer per invocation.
    """

    __slots__ = ("record", "version", "sinks_remaining", "done", "failed")

    def __init__(self, record, version, sinks_remaining, done):
        self.record = record
        self.version = version
        self.sinks_remaining = sinks_remaining
        self.done = done
        self.failed: Optional[str] = None

    def _deadline(self, _event) -> None:
        # Watchdog-timer callback: an invocation still pending at the
        # deadline times out.  Firing ``done`` with the sentinel lets
        # the invoke process wait on one event instead of a two-event
        # any_of condition.
        if not self.done.triggered:
            self.done.succeed(_TIMED_OUT)


@dataclass
class _DeployedWorkflow:
    dag: WorkflowDAG
    placement: Placement
    critical_exec: float
    live_invocations: int = 0
    # Compiled at deploy time so invoke() does no DAG or placement walks:
    # (source name, its engine, precomputed send-process name) triples,
    # the sink count, and every engine-local structure of this version.
    sources: list = field(default_factory=list)
    sink_count: int = 0
    structures: list = field(default_factory=list)


class _FnDispatch:
    """Compiled per-engine dispatch entry for one local function.

    Everything the hot path needs, resolved once at deploy time:
    dense index, trigger metadata, successor fan-out with pre-resolved
    remote engine references, and the process-name strings that were
    previously f-formatted on every spawn.
    """

    __slots__ = (
        "name",
        "index",
        "info",
        "preds_count",
        "is_virtual",
        "run_name",
        "sink_name",
        "sink_tag",
        "fail_tag",
        # DAG-ordered (remote engine or None, destination structure,
        # destination dispatch entry, process name, message tag).
        # Resolved lazily by :meth:`_link_entry` on first propagation,
        # once every engine of the deployment has compiled its table.
        "succ_entries",
        # batch_control mode: destinations with exactly one successor
        # (same tuples as ``succ_entries``) ...
        "succ_singles",
        # ... and multi-successor destinations coalesced into one
        # transfer: (remote engine or None, destination structure,
        # destination entries, names, joined names, process name, tag).
        "succ_batches",
        # DataflowSP eager shipping, precompiled; None for WorkerSP (and
        # for producers with nothing to ship).
        "ship_plan",
    )


class WorkerEngine:
    """The decentralized engine on one worker node."""

    # Spawn-name prefix for trigger handlers; DataflowSP overrides.
    _run_prefix = "worker"
    _local_notify_prefix = "rpc"
    _remote_notify_prefix = "sync"
    _state_tag_prefix = "state"

    def __init__(self, system: "FaaSFlowSystem", node: Node):
        self.system = system
        self.node = node
        self.env = node.env
        self._lock = Resource(self.env, capacity=1)
        # (workflow, version) -> structure for the local sub-graph.
        self._structures: dict[tuple[str, int], WorkflowStructure] = {}
        # (workflow, version) -> (structure, name -> _FnDispatch).
        self._compiled: dict[
            tuple[str, int],
            tuple[WorkflowStructure, dict[str, _FnDispatch]],
        ] = {}
        self.states_synced = 0  # cross-worker state messages received
        self.events_handled = 0  # engine-loop steps executed
        self.busy_time = 0.0  # seconds the engine loop was occupied
        # Crash state: while down, incoming control messages are queued
        # (the senders' TCP stacks would retry the connection) and
        # replayed on recovery.
        self.down = False
        self.crash_count = 0
        self._deferred: list[tuple[str, str, int, InvocationID, str]] = []

    # -- deployment ---------------------------------------------------------
    def deploy(self, structure: WorkflowStructure) -> None:
        key = (structure.workflow, structure.version)
        self._structures[key] = structure
        self._compiled[key] = (structure, self._compile(structure))

    def _compile(
        self, structure: WorkflowStructure
    ) -> dict[str, _FnDispatch]:
        """Build the indexed dispatch table for one deployed sub-graph."""
        node_name = self.node.name
        entries: dict[str, _FnDispatch] = {}
        for index, name in enumerate(structure.local_names):
            entry = _FnDispatch()
            entry.name = name
            entry.index = index
            entry.info = structure.infos[index]
            entry.preds_count = structure.preds_counts[index]
            entry.is_virtual = structure.virtual_flags[index]
            entry.run_name = f"{self._run_prefix}:{node_name}:{name}"
            entry.sink_name = f"sink-report:{name}"
            entry.sink_tag = f"sink:{name}"
            entry.fail_tag = f"failure:{name}"
            entry.ship_plan = None
            # Successor fan-out is linked on first propagation: the
            # destination dispatch tables may not exist yet while this
            # engine's sub-graph is being deployed.
            entry.succ_entries = None
            entry.succ_singles = None
            entry.succ_batches = None
            entries[name] = entry
        return entries

    def _link_entry(
        self, structure: WorkflowStructure, entry: _FnDispatch
    ) -> None:
        """Resolve one function's fan-out to destination dispatch refs.

        Runs once per (deployment, function), after which propagation
        needs no dict lookups at all: each successor is a pre-resolved
        (engine, structure, dispatch entry) triple with its process name
        and wire tag already formatted.
        """
        key = (structure.workflow, structure.version)
        engines = self.system.engines
        node_name = self.node.name
        plain = []
        groups: dict[str, list] = {}
        for successor, target in structure.successor_targets[entry.index]:
            if target == node_name:
                remote = None
                dest_structure, dest_entries = self._compiled[key]
                prefix = self._local_notify_prefix
            else:
                remote = engines[target]
                dest_structure, dest_entries = remote._compiled[key]
                prefix = self._remote_notify_prefix
            item = (
                remote,
                dest_structure,
                dest_entries[successor],
                f"{prefix}:{entry.name}->{successor}",
                f"{self._state_tag_prefix}:{successor}",
            )
            plain.append(item)
            groups.setdefault(target, []).append(item)
        singles = []
        batches = []
        for target, items in groups.items():
            if len(items) == 1:
                # A batch of one is the plain path: same transfer, same
                # single engine step — batching it would only relabel it.
                singles.append(items[0])
                continue
            remote = items[0][0]
            dest_structure = items[0][1]
            dest_entries = tuple(item[2] for item in items)
            names = tuple(dest.name for dest in dest_entries)
            prefix = (
                self._local_notify_prefix
                if remote is None
                else self._remote_notify_prefix
            )
            batches.append(
                (
                    remote,
                    dest_structure,
                    dest_entries,
                    names,
                    ",".join(names),
                    f"{prefix}:{entry.name}->[{len(items)}]",
                    f"{self._state_tag_prefix}-batch:"
                    f"{names[0]}+{len(items) - 1}",
                )
            )
        entry.succ_singles = tuple(singles)
        entry.succ_batches = tuple(batches)
        entry.succ_entries = tuple(plain)

    def retire(self, workflow: str, version: int) -> None:
        """Red-black support: drop an out-of-date sub-graph version."""
        structure = self._structures.pop((workflow, version), None)
        self._compiled.pop((workflow, version), None)
        if structure is None:
            return
        for function in structure.local_functions:
            if not structure.info(function).is_virtual:
                self.node.containers.recycle_version(function, version + 1)

    def structure(self, workflow: str, version: int) -> WorkflowStructure:
        try:
            return self._structures[(workflow, version)]
        except KeyError:
            raise KeyError(
                f"no sub-graph of {workflow!r} v{version} on {self.node.name}"
            ) from None

    def _lookup(
        self, workflow: str, version: int
    ) -> tuple[WorkflowStructure, dict[str, _FnDispatch]]:
        try:
            return self._compiled[(workflow, version)]
        except KeyError:
            raise KeyError(
                f"no sub-graph of {workflow!r} v{version} on {self.node.name}"
            ) from None

    def has_structure(self, workflow: str, version: int) -> bool:
        return (workflow, version) in self._structures

    @property
    def deployed_count(self) -> int:
        return len(self._structures)

    # -- engine event loop ----------------------------------------------------
    def _engine_step(self) -> Generator:
        # The context manager releases the lock even when the process
        # is interrupted while *waiting* for it (an ungranted request
        # is cancelled out of the queue rather than released).
        with self._lock.request() as request:
            yield request
            yield self.env.timeout(self.system.config.worker_process_time)
            self.events_handled += 1
            self.busy_time += self.system.config.worker_process_time

    # -- state synchronization (paper Fig. 6) ---------------------------------
    def _apply_state_update(
        self,
        structure: WorkflowStructure,
        entry: _FnDispatch,
        invocation_id: InvocationID,
    ) -> None:
        """One predecessor-done bookkeeping action (post engine step)."""
        inv = structure.invocation(invocation_id)
        index = entry.index
        done = inv.preds_done[index] + 1
        inv.preds_done[index] = done
        if not inv.flags[index] & TRIGGERED and done >= entry.preds_count:
            inv.flags[index] |= TRIGGERED
            structure.note_triggered(invocation_id, index)
            self.system.spawn_registered(
                self.run_function(structure, entry, invocation_id),
                invocation_id,
                node=self.node.name,
                name=entry.run_name,
            )

    def _trigger_entry(
        self,
        structure: WorkflowStructure,
        entry: _FnDispatch,
        invocation_id: InvocationID,
    ) -> None:
        """Fire an entry function (post engine step), once."""
        inv = structure.invocation(invocation_id)
        index = entry.index
        if not inv.flags[index] & TRIGGERED:
            inv.flags[index] |= TRIGGERED
            structure.note_triggered(invocation_id, index)
            self.system.spawn_registered(
                self.run_function(structure, entry, invocation_id),
                invocation_id,
                node=self.node.name,
                name=entry.run_name,
            )

    def receive_state_update(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """A predecessor of a local ``function`` finished somewhere.

        Name-based handler: recovery replay and external callers enter
        here; steady-state propagation uses the pre-linked notify paths.
        """
        if self.down:
            self._deferred.append(
                ("update", workflow, version, invocation_id, function)
            )
            return
        yield from self._engine_step()
        structure, entries = self._lookup(workflow, version)
        self._apply_state_update(structure, entries[function], invocation_id)

    def receive_state_updates(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        functions: Sequence[str],
    ) -> Generator:
        """Batched control plane: one engine wakeup applies all updates.

        Used only under ``EngineConfig.batch_control`` — the whole batch
        pays a *single* engine step (one handler wakeup), which is the
        documented divergence from the per-message default mode.
        """
        if self.down:
            for function in functions:
                self._deferred.append(
                    ("update", workflow, version, invocation_id, function)
                )
            return
        yield from self._engine_step()
        structure, entries = self._lookup(workflow, version)
        for function in functions:
            self._apply_state_update(
                structure, entries[function], invocation_id
            )

    def trigger_source(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> Generator:
        """Invocation request for an entry function arrived at this node."""
        if self.down:
            self._deferred.append(
                ("trigger", workflow, version, invocation_id, function)
            )
            return
        yield from self._engine_step()
        structure, entries = self._lookup(workflow, version)
        self._trigger_entry(structure, entries[function], invocation_id)

    # -- local execution -----------------------------------------------------
    def run_function(
        self,
        structure: WorkflowStructure,
        entry: _FnDispatch,
        invocation_id: InvocationID,
    ) -> Generator:
        system = self.system
        function = entry.name
        if system.tracer is not None:
            system.trace(
                Kind.FUNCTION_TRIGGERED, structure.workflow, invocation_id,
                function=function, node=self.node.name,
            )
        skipped = (
            system.config.evaluate_switches
            and not entry.is_virtual
            and is_skipped(structure.dag, function, invocation_id)
        )
        produced = False
        if entry.is_virtual or skipped:
            # Virtual step markers (and non-selected switch arms) cost
            # one local bookkeeping action, no container and no data.
            yield self.env.timeout(system.config.local_trigger_time)
            if skipped and system.tracer is not None:
                system.trace(
                    Kind.FUNCTION_EXECUTED, structure.workflow, invocation_id,
                    function=function, node=self.node.name, detail="skipped",
                )
        else:
            # The runtime runs inline in this (already node-bound)
            # trigger-handler process — no separate execute process on
            # the hot path.  Interrupts land in the runtime's frames and
            # surface with identical semantics.
            try:
                result = yield from system.runtime.execute(
                    structure.dag,
                    structure.placement,
                    invocation_id,
                    function,
                    version=structure.version,
                )
            except TaskCancelled:
                return  # whoever cancelled us owns the invocation's fate
            except FunctionFailure:
                # The task exhausted its retries: report the failure to
                # the client like a sink would report success.
                report_start = self.env.now
                yield system.network.message(
                    self.node.nic,
                    system.client_node.nic,
                    system.config.result_message_size,
                    tag=entry.fail_tag,
                )
                spans = system.spans
                if spans.enabled:
                    spans.record(
                        SpanKind.STATE_SYNC,
                        report_start,
                        self.env.now,
                        workflow=structure.workflow,
                        invocation_id=invocation_id,
                        function=function,
                        node=self.node.name,
                        parent=spans.root_of(invocation_id),
                        role="failure-report",
                        dst=system.client_node.name,
                    )
                system.invocation_failed(
                    structure.workflow, invocation_id, function
                )
                return
            if result is None:
                # The execute process was cancelled (invocation abort or
                # node crash) and exited quietly; so do we.
                return
            context = system.context(invocation_id)
            if context is not None:
                context.record.cold_starts += result.cold_starts
                context.record.retries += result.retries
            if result.cold_starts and system.tracer is not None:
                system.trace(
                    Kind.COLD_START, structure.workflow, invocation_id,
                    function=function, node=self.node.name,
                    detail=str(result.cold_starts),
                )
            produced = True
        inv = structure.invocation(invocation_id)
        inv.flags[entry.index] |= EXECUTED
        structure.note_untriggered(invocation_id, entry.index)
        if system.tracer is not None:
            system.trace(
                Kind.FUNCTION_EXECUTED, structure.workflow, invocation_id,
                function=function, node=self.node.name,
            )
        self._propagate(structure, invocation_id, entry, produced)

    def _propagate(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        entry: _FnDispatch,
        produced: bool = False,
    ) -> None:
        """Fan out state updates (and sink reports) as detached processes.

        Deliberately yield-free: once a function is marked ``executed``
        its notifications are committed atomically, so a node crash can
        never leave a half-propagated function.  The spawned messages
        are registered *invocation-bound* (not node-bound) — they model
        packets already handed to the TCP stack, which survive the
        sender's crash but die with the invocation.
        """
        if entry.succ_entries is None:
            self._link_entry(structure, entry)
        spawn = self.system.spawn_registered
        if not entry.succ_entries:
            spawn(
                self._report_sink(structure, invocation_id, entry),
                invocation_id,
                name=entry.sink_name,
            )
            return
        if self.system.config.batch_control:
            for item in entry.succ_singles:
                remote_engine = item[0]
                if remote_engine is None:
                    spawn(
                        self._notify_local(item[1], invocation_id, item[2]),
                        invocation_id,
                        name=item[3],
                    )
                else:
                    spawn(
                        self._notify_remote(
                            structure, invocation_id, item
                        ),
                        invocation_id,
                        name=item[3],
                    )
            for batch in entry.succ_batches:
                if batch[0] is None:
                    spawn(
                        self._notify_local_batch(
                            batch[1], invocation_id, batch[2]
                        ),
                        invocation_id,
                        name=batch[5],
                    )
                else:
                    spawn(
                        self._notify_remote_batch(
                            structure, invocation_id, batch
                        ),
                        invocation_id,
                        name=batch[5],
                    )
            return
        for item in entry.succ_entries:
            remote_engine = item[0]
            if remote_engine is None:
                spawn(
                    self._notify_local(item[1], invocation_id, item[2]),
                    invocation_id,
                    name=item[3],
                )
            else:
                spawn(
                    self._notify_remote(structure, invocation_id, item),
                    invocation_id,
                    name=item[3],
                )

    def _report_sink(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        entry: _FnDispatch,
    ) -> Generator:
        """A sink finished: report the execution state to the client."""
        report_start = self.env.now
        yield self.system.network.message(
            self.node.nic,
            self.system.client_node.nic,
            self.system.config.result_message_size,
            tag=entry.sink_tag,
        )
        spans = self.system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                report_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=entry.name,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="sink-report",
                dst=self.system.client_node.name,
            )
        self.system.sink_completed(structure.workflow, invocation_id)

    def _notify_local(
        self,
        dest_structure: WorkflowStructure,
        invocation_id: InvocationID,
        dest_entry: _FnDispatch,
    ) -> Generator:
        yield self.env.timeout(self.system.config.local_trigger_time)
        if self.down:
            self._deferred.append(
                (
                    "update", dest_structure.workflow,
                    dest_structure.version, invocation_id, dest_entry.name,
                )
            )
            return
        yield from self._engine_step()
        self._apply_state_update(dest_structure, dest_entry, invocation_id)

    def _notify_local_batch(
        self,
        dest_structure: WorkflowStructure,
        invocation_id: InvocationID,
        dest_entries: Sequence[_FnDispatch],
    ) -> Generator:
        """Batched local fan-out: one RPC hop, one engine wakeup."""
        yield self.env.timeout(self.system.config.local_trigger_time)
        if self.down:
            for dest_entry in dest_entries:
                self._deferred.append(
                    (
                        "update", dest_structure.workflow,
                        dest_structure.version, invocation_id,
                        dest_entry.name,
                    )
                )
            return
        yield from self._engine_step()
        for dest_entry in dest_entries:
            self._apply_state_update(
                dest_structure, dest_entry, invocation_id
            )

    def _notify_remote(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        item: tuple,
    ) -> Generator:
        remote_engine, dest_structure, dest_entry, _, tag = item
        system = self.system
        sync_start = self.env.now
        yield system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            system.config.state_message_size,
            tag=tag,
        )
        spans = system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=dest_entry.name,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="state",
                dst=remote_engine.node.name,
            )
        remote_engine.states_synced += 1
        if system.tracer is not None:
            system.trace(
                Kind.STATE_SYNC, structure.workflow, invocation_id,
                function=dest_entry.name, node=remote_engine.node.name,
                detail=f"from {self.node.name}",
            )
        if remote_engine.down:
            remote_engine._deferred.append(
                (
                    "update", structure.workflow, structure.version,
                    invocation_id, dest_entry.name,
                )
            )
            return
        yield from remote_engine._engine_step()
        remote_engine._apply_state_update(
            dest_structure, dest_entry, invocation_id
        )

    def _notify_remote_batch(
        self,
        structure: WorkflowStructure,
        invocation_id: InvocationID,
        batch: tuple,
    ) -> Generator:
        """Batched remote fan-out: one transfer, one remote wakeup.

        The coalesced message carries every state entry (the bytes still
        move: size scales with the batch), but the destination engine
        pays a single engine step for the whole batch.
        """
        remote_engine, dest_structure, dest_entries, _, joined, _, tag = batch
        system = self.system
        sync_start = self.env.now
        yield system.network.message(
            self.node.nic,
            remote_engine.node.nic,
            system.config.state_message_size * len(dest_entries),
            tag=tag,
        )
        spans = system.spans
        if spans.enabled:
            spans.record(
                SpanKind.STATE_SYNC,
                sync_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=dest_entries[0].name,
                node=self.node.name,
                parent=spans.root_of(invocation_id),
                role="state-batch",
                dst=remote_engine.node.name,
                batch=len(dest_entries),
            )
        remote_engine.states_synced += len(dest_entries)
        if system.tracer is not None:
            system.trace(
                Kind.STATE_SYNC, structure.workflow, invocation_id,
                function=joined, node=remote_engine.node.name,
                detail=f"batch from {self.node.name}",
            )
        if remote_engine.down:
            for dest_entry in dest_entries:
                remote_engine._deferred.append(
                    (
                        "update", structure.workflow, structure.version,
                        invocation_id, dest_entry.name,
                    )
                )
            return
        yield from remote_engine._engine_step()
        for dest_entry in dest_entries:
            remote_engine._apply_state_update(
                dest_structure, dest_entry, invocation_id
            )

    # -- crash and recovery ---------------------------------------------------
    def fail(self) -> list[tuple[str, int, InvocationID, str]]:
        """The node crashed: mark the engine down, collect lost tasks.

        Every local function that was triggered but had not finished
        executing is reset to untriggered and returned so the system
        can re-trigger it on recovery.  (``run_function`` marks a
        function executed and spawns its notifications in one atomic
        step, so ``executed`` functions never need replay.)  The lost
        set is read straight off each structure's live
        triggered-not-executed index, so a crash costs O(in-flight
        tasks) regardless of how many invocations the engine has ever
        served.
        """
        self.down = True
        self.crash_count += 1
        pending: list[tuple[str, int, InvocationID, str]] = []
        for (workflow, version), structure in self._structures.items():
            for invocation_id, function in structure.drain_live_triggered():
                pending.append((workflow, version, invocation_id, function))
        return pending

    def recover(self) -> None:
        """The node came back: replay the control backlog.

        Deferred messages re-enter through the normal handlers (each
        paying an engine step, like a real backlog drain would).
        """
        self.down = False
        deferred, self._deferred = self._deferred, []
        for kind, workflow, version, invocation_id, function in deferred:
            if (
                self.system.context(invocation_id) is None
                or not self.has_structure(workflow, version)
            ):
                continue  # the invocation died while we were down
            handler = (
                self.receive_state_update
                if kind == "update"
                else self.trigger_source
            )
            self.system.spawn_registered(
                handler(workflow, version, invocation_id, function),
                invocation_id,
                node=self.node.name,
                name=f"replay:{self.node.name}:{function}",
            )

    def retrigger(
        self,
        workflow: str,
        version: int,
        invocation_id: InvocationID,
        function: str,
    ) -> bool:
        """Re-run a task the crash killed, unless it already restarted."""
        structure, entries = self._lookup(workflow, version)
        entry = entries[function]
        inv = structure.invocation(invocation_id)
        if inv.flags[entry.index] & (TRIGGERED | EXECUTED):
            return False  # a replayed control message beat us to it
        inv.flags[entry.index] |= TRIGGERED
        structure.note_triggered(invocation_id, entry.index)
        self.system.spawn_registered(
            self.run_function(structure, entry, invocation_id),
            invocation_id,
            node=self.node.name,
            name=f"retrigger:{self.node.name}:{function}",
        )
        return True


class FaaSFlowSystem:
    """The WorkerSP workflow system: graph-partitioned distributed engines."""

    mode = "worker-sp"
    # Telemetry/SLO label for record_invocation_metrics; subclasses with
    # a different triggering paradigm (DataflowSP) override both.
    engine_label = "worker-sp"
    engine_class = WorkerEngine

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        policy: Optional[DataPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.config = config or EngineConfig()
        self.tracer = tracer
        self.spans = cluster.spans
        self.telemetry = cluster.telemetry
        self.metrics = metrics if metrics is not None else MetricsCollector()
        if self.spans.enabled:
            self.metrics.spans = self.spans
        self.policy = policy or FaaStorePolicy(cluster, self.metrics)
        self.registry = ProcessRegistry()
        self.runtime = FunctionRuntime(
            cluster, self.config, self.policy, faults=faults,
            registry=self.registry,
        )
        # The master node doubles as the invoking client (paper §5.1).
        self.client_node = cluster.storage_node
        self.engines: dict[str, WorkerEngine] = {
            worker.name: self.engine_class(self, worker)
            for worker in cluster.workers
        }
        self._deployed: dict[tuple[str, int], _DeployedWorkflow] = {}
        self._current_version: dict[str, int] = {}
        self._contexts: dict[InvocationID, _InvocationContext] = {}
        self.node_crashes = 0
        self.retriggered = 0
        # Serving-lifecycle gauges: current and peak concurrent
        # invocations, so soak tests can pin memory ∝ concurrency.
        self.in_flight = 0
        self.peak_in_flight = 0
        # node name -> tasks lost to a crash, re-triggered on recovery.
        self._crash_pending: dict[
            str, list[tuple[str, int, InvocationID, str]]
        ] = {}

    def spawn_registered(
        self,
        generator: Generator,
        invocation_id: InvocationID,
        node: str = "",
        name: str = "",
    ):
        """Spawn a process and track it for cancellation.

        ``node`` binds the process to a worker so node crashes kill it;
        processes left unbound (in-flight messages) die only with their
        invocation.
        """
        process = self.env.process(generator, name=name)
        self.registry.register(process, invocation_id, node=node)
        return process

    # -- deployment ---------------------------------------------------------
    def engine(self, worker_name: str) -> WorkerEngine:
        try:
            return self.engines[worker_name]
        except KeyError:
            raise KeyError(f"no engine on {worker_name!r}") from None

    def deploy(
        self,
        dag: WorkflowDAG,
        placement: Placement,
        quotas: Optional[dict[str, float]] = None,
        prewarm: int = 0,
        container_limits: Optional[dict[str, float]] = None,
    ) -> None:
        """Distribute sub-graphs to the worker engines (one version).

        ``quotas`` (worker name -> bytes, from the scheduler's
        reclamation pass) pins each node's FaaStore pool; omit it to
        leave the pools unchanged.  ``prewarm`` starts that many
        containers per function on its placed worker so first
        invocations skip the cold start.  Re-deploying an
        already-deployed workflow performs a red-black rollout: the new
        version becomes current immediately, old versions drain and are
        retired once their invocations finish.
        """
        dag.validate()
        placement.validate_against(dag)
        if quotas is not None:
            for worker in self.cluster.workers:
                worker.set_faastore_quota(
                    quotas.get(worker.name, 0.0), workflow=dag.name
                )
        if container_limits:
            # Fig. 10(b): the reclaimed memory physically comes out of
            # each function's own containers.
            for function, limit in container_limits.items():
                worker = self.cluster.node(placement.node_of(function))
                worker.containers.set_function_limit(function, limit)
        previous = self._current_version.get(dag.name)
        version = (previous or 0) + 1
        placement = placement.with_version(version)
        deployed = _DeployedWorkflow(
            dag=dag,
            placement=placement,
            critical_exec=static_critical_exec(dag),
        )
        for worker_name, engine in self.engines.items():
            local = placement.functions_on(worker_name)
            if local:
                structure = WorkflowStructure(
                    dag, placement, local, version=version
                )
                engine.deploy(structure)
                deployed.structures.append(structure)
        if prewarm > 0:
            for node in dag.real_nodes():
                worker = self.cluster.node(placement.node_of(node.name))
                instances = max(1, int(round(node.map_factor))) * prewarm
                worker.containers.prewarm(
                    node.name, count=instances, version=version
                )
        # Pre-resolve each entry function's engine, structure, and
        # dispatch entry (every sub-graph is compiled by now), so
        # invoke() spawns sends with zero lookups or string formatting.
        deployed.sources = []
        for source in dag.sources():
            engine = self.engines[placement.node_of(source)]
            structure, entries = engine._lookup(dag.name, version)
            deployed.sources.append(
                (
                    engine,
                    structure,
                    entries[source],
                    f"invoke:{dag.name}:{source}",
                    f"invoke:{source}",
                )
            )
        deployed.sink_count = len(dag.sinks())
        self._deployed[(dag.name, version)] = deployed
        self._current_version[dag.name] = version
        if previous is not None:
            self._try_retire(dag.name, previous)

    def current_version(self, workflow: str) -> int:
        try:
            return self._current_version[workflow]
        except KeyError:
            raise KeyError(f"workflow {workflow!r} is not deployed") from None

    def deployed(self, workflow: str, version: Optional[int] = None):
        if version is None:
            version = self.current_version(workflow)
        return self._deployed[(workflow, version)]

    def _try_retire(self, workflow: str, version: int) -> None:
        deployed = self._deployed.get((workflow, version))
        if deployed is None or deployed.live_invocations > 0:
            return
        if version == self._current_version.get(workflow):
            return
        del self._deployed[(workflow, version)]
        for engine in self.engines.values():
            engine.retire(workflow, version)

    # -- invocation ----------------------------------------------------------
    def context(self, invocation_id: InvocationID) -> Optional[_InvocationContext]:
        return self._contexts.get(invocation_id)

    def invoke(self, workflow: str) -> Generator:
        """Simulation process: one end-to-end invocation (client side)."""
        version = self._current_version.get(workflow)
        if version is None:
            raise KeyError(f"workflow {workflow!r} is not deployed")
        deployed = self._deployed[(workflow, version)]
        invocation_id = new_invocation_id()
        env = self.env
        record = InvocationRecord(
            workflow=workflow,
            invocation_id=invocation_id,
            mode=self.mode,
            started_at=env.now,
            critical_path_exec=deployed.critical_exec,
        )
        context = _InvocationContext(
            record=record,
            version=version,
            sinks_remaining=deployed.sink_count,
            done=env.event(),
        )
        self._contexts[invocation_id] = context
        deployed.live_invocations += 1
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        if self.tracer is not None:
            self.trace(Kind.INVOCATION_START, workflow, invocation_id)
        if self.spans.enabled:
            self.spans.start_invocation(
                invocation_id, workflow=workflow, mode=self.mode
            )
        # The client ships the invocation request to each entry
        # function's worker; from there everything is worker-side.
        for engine, structure, entry, send_name, tag in deployed.sources:
            self.spawn_registered(
                self._send_invocation(
                    invocation_id, engine, structure, entry, tag
                ),
                invocation_id,
                name=send_name,
            )
        timeout = env.timeout(self.config.execution_timeout)
        timeout.callbacks.append(context._deadline)
        yield context.done
        # Check failure *before* completion: when a failure report and
        # the last sink report land in the same timestep, the failure
        # must win (sink_completed also refuses to count sinks after a
        # failure, so the completion path can't even trigger then).
        if context.failed is not None:
            record.status = InvocationStatus.FAILED
            record.finished_at = env.now
        elif context.done.value is _TIMED_OUT:
            record.status = InvocationStatus.TIMEOUT
            record.finished_at = record.started_at + self.config.execution_timeout
        else:
            record.finished_at = env.now
        if not timeout.processed:
            # Cancel the watchdog so the kernel heap doesn't accumulate
            # one 60-second timer per completed invocation.
            timeout.cancel()
        if record.status != InvocationStatus.OK:
            cancelled = self.registry.cancel_invocation(
                invocation_id,
                CancelCause(CancelKind.INVOCATION_ABORT, detail=record.status),
            )
            if cancelled:
                self.trace(
                    Kind.CANCELLED, workflow, invocation_id,
                    detail=f"{cancelled} process(es)",
                )
        self.registry.release_invocation(invocation_id)
        self.policy.cleanup_invocation(deployed.dag, invocation_id)
        self.metrics.record_invocation(record)
        if self.telemetry.enabled:
            record_invocation_metrics(
                self.telemetry, record, self.tenant_of(workflow),
                self.engine_label,
            )
        if self.tracer is not None:
            self.trace(
                Kind.INVOCATION_END, workflow, invocation_id,
                detail=record.status,
            )
        if self.spans.enabled:
            root = self.spans.root_of(invocation_id)
            if root is not None:
                self.spans.end(root, status=record.status)
        self._contexts.pop(invocation_id, None)
        # Release the per-invocation *State* arrays on every engine
        # that holds a sub-graph of this workflow (paper §4.2.1), so
        # live engine memory is O(in-flight), not O(served).
        for structure in deployed.structures:
            structure.release_invocation(invocation_id)
        deployed.live_invocations -= 1
        self.in_flight -= 1
        if version != self._current_version.get(workflow):
            self._try_retire(workflow, version)
        return record

    def _send_invocation(
        self,
        invocation_id: InvocationID,
        engine: WorkerEngine,
        structure: WorkflowStructure,
        entry: _FnDispatch,
        tag: str,
    ) -> Generator:
        send_start = self.env.now
        yield self.network.message(
            self.client_node.nic,
            engine.node.nic,
            self.config.assign_message_size,
            tag=tag,
        )
        if self.spans.enabled:
            self.spans.record(
                SpanKind.STATE_SYNC,
                send_start,
                self.env.now,
                workflow=structure.workflow,
                invocation_id=invocation_id,
                function=entry.name,
                node=self.client_node.name,
                parent=self.spans.root_of(invocation_id),
                role="invoke",
                dst=engine.node.name,
            )
        if engine.down:
            engine._deferred.append(
                (
                    "trigger", structure.workflow, structure.version,
                    invocation_id, entry.name,
                )
            )
            return
        yield from engine._engine_step()
        engine._trigger_entry(structure, entry, invocation_id)

    def tenant_of(self, workflow: str) -> str:
        """Telemetry tenant label for one workflow's invocations.

        ``EngineConfig.tenant`` is the system-wide default; multi-tenant
        serving harnesses may register per-workflow owners through
        :meth:`set_tenants` for per-tenant rollups.
        """
        tenants = getattr(self, "_tenants", None)
        if tenants is not None:
            return tenants.get(workflow, self.config.tenant)
        return self.config.tenant

    def set_tenants(self, tenants: dict[str, str]) -> None:
        self._tenants = dict(tenants)

    def trace(self, kind: str, workflow: str, invocation_id: InvocationID,
              function: str = "", node: str = "", detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, kind, workflow, invocation_id,
                function=function, node=node, detail=detail,
            )

    def invocation_failed(
        self, workflow: str, invocation_id: InvocationID, function: str
    ) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # already timed out / torn down
        if context.failed is None:
            context.failed = function
            if not context.done.triggered:
                context.done.succeed(function)

    def sink_completed(self, workflow: str, invocation_id: InvocationID) -> None:
        context = self._contexts.get(invocation_id)
        if context is None:
            return  # invocation already timed out and was torn down
        if context.failed is not None:
            return  # already failed; a late sink can't resurrect it
        context.sinks_remaining -= 1
        if context.sinks_remaining == 0 and not context.done.triggered:
            context.done.succeed()

    # -- fault hooks (called by FaultDriver) ----------------------------------
    def on_node_crash(self, node_name: str) -> None:
        """WorkerSP recovery: engine-level re-triggering.

        The crashed node's tasks are killed with the *terminal*
        NODE_STOP cause — its engine is gone, so there is no runtime
        left to retry inside.  Instead the engine records which local
        functions were lost and re-triggers them when the node (and its
        sub-graph state) comes back.
        """
        engine = self.engines.get(node_name)
        if engine is None:
            return
        cancelled = self.registry.cancel_node(
            node_name, CancelCause(CancelKind.NODE_STOP, detail=node_name)
        )
        pending = engine.fail()
        if pending:
            self._crash_pending.setdefault(node_name, []).extend(pending)
        self.node_crashes += 1
        self.trace(
            Kind.NODE_CRASH, "", 0, node=node_name,
            detail=f"killed {cancelled} process(es), lost {len(pending)} task(s)",
        )

    def on_node_recovery(self, node_name: str) -> None:
        engine = self.engines.get(node_name)
        if engine is None:
            return
        # First drain the control messages that queued during the
        # outage (they may re-trigger some lost tasks themselves)...
        engine.recover()
        # ...then re-trigger whatever the crash killed and nothing has
        # restarted yet, for invocations that are still alive.
        retriggered = 0
        for workflow, version, invocation_id, function in self._crash_pending.pop(
            node_name, []
        ):
            if (
                invocation_id not in self._contexts
                or not engine.has_structure(workflow, version)
            ):
                continue
            if engine.retrigger(workflow, version, invocation_id, function):
                retriggered += 1
        self.retriggered += retriggered
        self.trace(
            Kind.NODE_RECOVERY, "", 0, node=node_name,
            detail=f"retriggered {retriggered} task(s)",
        )

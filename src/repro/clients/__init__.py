"""Invocation clients (closed-loop / open-loop load generation)."""

from .clients import (
    ClosedLoopClient,
    OpenLoopClient,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "ClosedLoopClient",
    "OpenLoopClient",
    "run_closed_loop",
    "run_open_loop",
]

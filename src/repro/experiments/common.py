"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module exposes ``run(**knobs) -> ExperimentResult``;
this module provides the pieces they share: cluster construction with
the paper's testbed shape, the schedule-deploy-feedback loop that takes
a workflow through the hash bootstrap into a grouped placement, and a
plain-text table renderer for the printed output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..clients import run_closed_loop
from ..core import (
    DataflowSystem,
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    HyperFlowServerlessSystem,
    MonolithicSystem,
    hash_partition,
)
from ..dag import WorkflowDAG
from ..parallel import ParallelRunner, derive_seed
from ..sim import MB, Cluster, ClusterConfig, Environment

__all__ = [
    "ExperimentResult",
    "ParallelRunner",
    "derive_seed",
    "make_cluster",
    "make_dataflow",
    "make_faasflow",
    "make_hyperflow",
    "deploy_with_feedback",
    "format_table",
    "MB",
]


@dataclass
class ExperimentResult:
    """Printable result of one experiment run."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored markdown section."""

        def cell(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:,.2f}"
            return str(value)

        lines = [f"## {self.experiment} — {self.title}", ""]
        lines.append("| " + " | ".join(str(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(cell(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"> {note}")
        return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            if value != 0 and abs(value) < 0.01:
                return f"{value:.4f}"
            return f"{value:,.2f}"
        return str(value)

    table = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in table)) if table
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def render(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(r) for r in table)
    return "\n".join(lines)


def make_cluster(
    workers: int = 7,
    storage_bandwidth: float = 50 * MB,
    cold_start_time: float = 0.5,
    seed_config: Optional[Callable[[ClusterConfig], None]] = None,
) -> Cluster:
    """A fresh simulated testbed in the paper's §5.1 shape."""
    from ..sim import ContainerSpec

    config = ClusterConfig(
        workers=workers,
        storage_bandwidth=storage_bandwidth,
        container=ContainerSpec(cold_start_time=cold_start_time),
    )
    if seed_config is not None:
        seed_config(config)
    cluster = Cluster(Environment(), config)
    # `faasflow-experiment --trace-out` activates an ambient collector;
    # instrumenting here (the factory every experiment uses) is how
    # spans reach clusters that experiments build internally.
    from ..obs.context import active_collector

    collector = active_collector()
    if collector is not None:
        collector.instrument(cluster)
    return cluster


def make_hyperflow(
    cluster: Cluster, ship_data: bool = True, **config_kwargs
) -> HyperFlowServerlessSystem:
    """The MasterSP baseline on a cluster."""
    return HyperFlowServerlessSystem(
        cluster, EngineConfig(ship_data=ship_data, **config_kwargs)
    )


def make_faasflow(
    cluster: Cluster, ship_data: bool = True, **config_kwargs
) -> tuple[FaaSFlowSystem, GraphScheduler]:
    """FaaSFlow (WorkerSP + FaaStore) plus its graph scheduler."""
    system = FaaSFlowSystem(
        cluster, EngineConfig(ship_data=ship_data, **config_kwargs)
    )
    scheduler = GraphScheduler(cluster)
    return system, scheduler


def make_dataflow(
    cluster: Cluster, ship_data: bool = True, **config_kwargs
) -> tuple[DataflowSystem, GraphScheduler]:
    """DataflowSP (function-level triggering + eager shipping) plus its
    graph scheduler.  Deployment is placement-driven exactly like
    WorkerSP, so ``deploy_with_feedback`` works unchanged."""
    system = DataflowSystem(
        cluster, EngineConfig(ship_data=ship_data, **config_kwargs)
    )
    scheduler = GraphScheduler(cluster)
    return system, scheduler


def deploy_with_feedback(
    system: FaaSFlowSystem,
    scheduler: GraphScheduler,
    dag: WorkflowDAG,
    warmup_invocations: int = 2,
) -> None:
    """The paper's partition-iteration loop, condensed.

    Deploys with the hash bootstrap, runs a few warm-up invocations to
    gather transfer measurements and memory high-water marks, feeds them
    back, then re-partitions with Algorithm 1 and redeploys (red-black).
    With ``warmup_invocations=0`` the grouped partition is computed from
    the statically estimated edge weights instead.
    """
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)
    if warmup_invocations > 0:
        run_closed_loop(system, dag.name, warmup_invocations)
        for node in dag.real_nodes():
            scheduler.observe_memory(node.name, node.memory)
        scheduler.absorb_feedback(dag, system.metrics)
    else:
        from ..dag import estimate_edge_weights

        estimate_edge_weights(
            dag, bandwidth=system.cluster.config.storage_bandwidth
        )
    placement, quotas, _ = scheduler.schedule(dag)
    system.deploy(dag, placement, quotas=quotas)


def register_hyperflow(
    system: HyperFlowServerlessSystem, dag: WorkflowDAG
) -> None:
    """Register a workflow on the baseline with the control-variate
    routing policy: the same hash placement FaaSFlow bootstraps with."""
    placement = hash_partition(dag, system.cluster.worker_names())
    system.register(dag, placement)

"""Terminal bar charts for experiment results.

The artifact ships a ``draw.sh`` that renders comparison figures from
the collected CSVs; in a terminal-first reproduction the equivalent is
an ASCII chart.  :func:`bar_chart` renders one series, and
:func:`grouped_bar_chart` renders the two-system comparisons most
figures need (HyperFlow-serverless vs FaaSFlow).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "chart_for_result"]

_FULL = "#"
_WIDTH = 46


def _bar(value: float, maximum: float, width: int = _WIDTH) -> str:
    if maximum <= 0:
        return ""
    filled = round(width * value / maximum)
    return _FULL * max(0, min(width, filled))


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    unit: str = "",
    width: int = _WIDTH,
) -> str:
    """One horizontal bar per label, scaled to the series maximum.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], unit="s"))  # doctest: +SKIP
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("empty chart")
    maximum = max(values)
    label_width = max(len(str(l)) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _bar(value, maximum, width)
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:,.2f}{(' ' + unit) if unit else ''}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "",
    unit: str = "",
    width: int = _WIDTH,
) -> str:
    """Two-or-more series per label, one bar row per (label, series).

    The typical use is the paper's per-benchmark comparison::

        grouped_bar_chart(
            ["Cyc", "Epi"],
            {"HyperFlow": [204.2, 2.23], "FaaSFlow": [10.28, 0.69]},
            unit="s",
        )
    """
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} length mismatch")
    maximum = max(max(values) for values in series.values())
    label_width = max(len(str(l)) for l in labels)
    series_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for index, label in enumerate(labels):
        for name, values in series.items():
            value = values[index]
            bar = _bar(value, maximum, width)
            lines.append(
                f"{str(label).rjust(label_width)} {name.ljust(series_width)} "
                f"|{bar.ljust(width)}| {value:,.2f}"
                f"{(' ' + unit) if unit else ''}"
            )
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def chart_for_result(result, value_column: int = 1) -> Optional[str]:
    """Best-effort chart of an :class:`ExperimentResult` table column.

    Uses the first column as labels and ``value_column`` as the series;
    returns ``None`` when the column is not numeric.
    """
    labels = [str(row[0]) for row in result.rows]
    try:
        values = [float(row[value_column]) for row in result.rows]
    except (TypeError, ValueError, IndexError):
        return None
    title = f"{result.experiment}: {result.headers[value_column]}"
    return bar_chart(labels, values, title=title)

"""Kernel hot-path regression bench: optimized kernel vs frozen seed.

``_seed_kernel.py`` is a verbatim copy of ``sim/kernel.py`` as it stood
before the hot-path work (trampoline elimination, Timeout free-list,
``Environment.__slots__``, single-event condition short-circuit, inlined
run loops).  The bench runs the same four microbenchmarks against both
modules, interleaved, and asserts the geometric-mean events/sec ratio —
so a future kernel change that gives the speedup back fails loudly here
rather than silently.

Run directly (``python benchmarks/test_bench_kernel.py``) to refresh the
committed ``BENCH_kernel.json`` baseline, including the serial vs
``--jobs`` wall-clock of one sweep experiment.
"""

from __future__ import annotations

import importlib.util
import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.sim import kernel as new_kernel

_HERE = Path(__file__).resolve().parent
_ROUNDS = 5
_TARGET_GEOMEAN = 1.3


def _load_seed_kernel():
    spec = importlib.util.spec_from_file_location(
        "faasflow_seed_kernel", _HERE / "_seed_kernel.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# -- microbenchmarks -----------------------------------------------------
# Each takes a kernel module and returns events/sec for its hot loop.

def bench_timeout_churn(K, n=100_000):
    """One process burning through n short timeouts (the dominant
    pattern in the simulator: container timers, transfer completions)."""
    env = K.Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(ticker(env))
    start = time.perf_counter()
    env.run()
    return n / (time.perf_counter() - start)


def bench_processed_event_yield(K, n=100_000):
    """Yielding an already-processed event n times — the trampoline
    path that used to allocate a throwaway Event per resume."""
    env = K.Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()

    def spinner(env):
        for _ in range(n):
            yield ev

    env.process(spinner(env))
    start = time.perf_counter()
    env.run()
    return n / (time.perf_counter() - start)


def bench_process_spawn(K, n=30_000):
    """Spawning and awaiting n short-lived child processes (one
    bootstrap resume + one zero-delay timeout each)."""
    env = K.Environment()

    def leaf(env):
        yield env.timeout(0.0)
        return 1

    def parent(env):
        for _ in range(n):
            yield env.process(leaf(env))

    env.process(parent(env))
    start = time.perf_counter()
    env.run()
    return n / (time.perf_counter() - start)


def bench_single_condition(K, n=60_000):
    """all_of over a single event — the short-circuit mirror path."""
    env = K.Environment()

    def waiter(env):
        for _ in range(n):
            yield env.all_of([env.timeout(0.001)])

    env.process(waiter(env))
    start = time.perf_counter()
    env.run()
    return n / (time.perf_counter() - start)


BENCHES = [
    ("timeout_churn", bench_timeout_churn),
    ("processed_event_yield", bench_processed_event_yield),
    ("process_spawn", bench_process_spawn),
    ("single_condition", bench_single_condition),
]


def _measure():
    """Best-of-_ROUNDS events/sec for both kernels, interleaved A/B so
    thermal/scheduler drift hits both sides equally."""
    seed_kernel = _load_seed_kernel()
    results = {}
    for name, fn in BENCHES:
        seed_best = 0.0
        opt_best = 0.0
        for _ in range(_ROUNDS):
            seed_best = max(seed_best, fn(seed_kernel))
            opt_best = max(opt_best, fn(new_kernel))
        results[name] = {
            "seed_events_per_sec": round(seed_best),
            "optimized_events_per_sec": round(opt_best),
            "speedup": round(opt_best / seed_best, 3),
        }
    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in results.values()) / len(results)
    )
    return results, round(geomean, 3)


def test_kernel_speedup_vs_seed(benchmark):
    def run_ab():
        return _measure()

    results, geomean = benchmark(run_ab)
    benchmark.extra_info["benches"] = results
    benchmark.extra_info["geomean_speedup"] = geomean
    assert geomean >= _TARGET_GEOMEAN, (
        f"kernel geomean speedup regressed to {geomean:.2f}x "
        f"(target >= {_TARGET_GEOMEAN}x): {results}"
    )


def _time_sweep(jobs: int) -> float:
    from repro.experiments import fig12_bandwidth_sweep

    MB = 1024 * 1024
    start = time.perf_counter()
    fig12_bandwidth_sweep.run(
        invocations=6,
        rates=(2.0, 6.0),
        bandwidths=(25 * MB, 100 * MB),
        jobs=jobs,
    )
    return round(time.perf_counter() - start, 3)


def main() -> None:
    results, geomean = _measure()
    payload = {
        "bench": "kernel hot path (events/sec, best of "
        f"{_ROUNDS} interleaved rounds)",
        "baseline": "benchmarks/_seed_kernel.py (pre-optimization kernel)",
        "cpu_count": os.cpu_count(),
        "benches": results,
        "geomean_speedup": geomean,
        "sweep_wall_clock": {
            "experiment": "fig12 (quick: 2 bandwidths x 2 rates, "
            "6 invocations)",
            "serial_seconds": _time_sweep(jobs=1),
            "jobs2_seconds": _time_sweep(jobs=2),
            "note": "--jobs only pays off with >1 core; identical "
            "results either way is the invariant under test",
        },
    }
    out = _HERE.parent / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {out}")


if __name__ == "__main__":
    main()

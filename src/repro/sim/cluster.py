"""Cluster assembly: nodes, the storage node, and the shared fabric.

Mirrors the paper's testbed (Table 3 / §5.1): one master + storage node
and seven worker nodes, each with 8 cores and 32 GB, connected through a
network whose storage-node bandwidth is the configurable bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs.spans import NULL_SPANS
from ..obs.telemetry import NULL_TELEMETRY
from .container import ContainerPool, ContainerSpec
from .kernel import Environment, SimulationError
from .network import MB, Network, NetworkConfig, NIC
from .resources import CPUAllocator, MemoryAccount
from .storage import LocalMemStore, RemoteKVStore

__all__ = ["NodeConfig", "ClusterConfig", "Node", "Cluster", "GB"]

GB = 1024.0 * 1024.0 * 1024.0


@dataclass(frozen=True)
class NodeConfig:
    """Hardware of one node (paper Table 3: ecs.g7.2xlarge)."""

    cores: int = 8
    memory: float = 32 * GB
    bandwidth: float = 100 * MB  # NIC speed, bytes/second

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError("cores must be >= 1")
        if self.memory <= 0:
            raise SimulationError("memory must be > 0")
        if self.bandwidth <= 0:
            raise SimulationError("bandwidth must be > 0")


@dataclass
class ClusterConfig:
    """Whole-testbed shape (defaults follow the paper's §5.1 setup)."""

    workers: int = 7
    worker: NodeConfig = field(default_factory=NodeConfig)
    storage: NodeConfig = field(
        default_factory=lambda: NodeConfig(cores=16, memory=64 * GB)
    )
    storage_bandwidth: float = 50 * MB  # the §5.4 sweep axis
    container: ContainerSpec = field(default_factory=ContainerSpec)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    db_op_latency: float = 0.002
    # CouchDB on the 3000-IOPS disk serves a handful of bulk requests
    # at once; the rest queue.
    db_concurrency: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise SimulationError("need at least one worker")
        if self.storage_bandwidth <= 0:
            raise SimulationError("storage_bandwidth must be > 0")


class Node:
    """One machine: cores, memory, NIC, container pool, local store."""

    def __init__(
        self,
        env: Environment,
        name: str,
        config: NodeConfig,
        network: Network,
        container_spec: ContainerSpec,
        bandwidth: Optional[float] = None,
    ):
        self.env = env
        self.name = name
        self.config = config
        self.cpu = CPUAllocator(env, config.cores)
        self.memory = MemoryAccount(env, config.memory)
        self.nic = network.attach(name, bandwidth or config.bandwidth)
        self.containers = ContainerPool(
            env, name, self.cpu, self.memory, container_spec
        )
        self.memstore = LocalMemStore(env, name)
        self._up = True
        self._faastore_pool_handle: Optional[int] = None
        self._faastore_pools: dict[str, float] = {}

    @property
    def up(self) -> bool:
        return self._up

    def fail(self) -> int:
        """Crash this node: every container dies, nothing new starts.

        Returns the number of containers destroyed.  Interrupting the
        processes that were using them is the workflow system's job
        (via its :class:`~repro.core.faults.ProcessRegistry`) — the
        substrate only models the hardware going away.
        """
        if not self._up:
            return 0
        self._up = False
        self.containers.set_offline(True)
        return self.containers.fail_all()

    def recover(self) -> None:
        """Bring the node back empty: everything cold-starts again."""
        if self._up:
            return
        self._up = True
        self.containers.set_offline(False)

    def set_faastore_quota(self, quota: float, workflow: str = "_default") -> None:
        """Pin a workflow's reclaimed FaaStore pool on this node.

        Each deployed workflow contributes its own pool (paper §4.3.2
        attaches the reclaimed memory to a WorkflowID); the node's
        memory store is sized to the sum of all pools.
        """
        if quota > 0:
            self._faastore_pools[workflow] = quota
        else:
            self._faastore_pools.pop(workflow, None)
        total = sum(self._faastore_pools.values())
        if self._faastore_pool_handle is not None:
            self.memory.free(self._faastore_pool_handle)
            self._faastore_pool_handle = None
        if total > 0:
            self._faastore_pool_handle = self.memory.reserve(
                total, tag="faastore-pool"
            )
        self.memstore.set_quota(total)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} cores={self.config.cores}>"


class Cluster:
    """The full testbed: workers + storage node + network + remote store."""

    def __init__(self, env: Environment, config: Optional[ClusterConfig] = None):
        self.env = env
        self.config = config or ClusterConfig()
        self.network = Network(env, self.config.network)
        self.workers: list[Node] = [
            Node(
                env,
                f"worker-{i}",
                self.config.worker,
                self.network,
                self.config.container,
            )
            for i in range(self.config.workers)
        ]
        self.storage_node = Node(
            env,
            "storage",
            self.config.storage,
            self.network,
            self.config.container,
            bandwidth=self.config.storage_bandwidth,
        )
        self.remote_store = RemoteKVStore(
            env,
            self.network,
            self.storage_node.nic,
            op_latency=self.config.db_op_latency,
            concurrency=self.config.db_concurrency,
        )
        self._by_name: dict[str, Node] = {n.name: n for n in self.workers}
        self._by_name[self.storage_node.name] = self.storage_node
        self.spans = NULL_SPANS
        self.telemetry = NULL_TELEMETRY

    def install_spans(self, spans) -> None:
        """Attach a span tracer to every producer in the substrate.

        The network (transfer spans with contention slowdown) and each
        node's container pool (cold-start / warm-reuse / evict events)
        record into ``spans``; engines built on this cluster pick it up
        as their default tracer too.
        """
        self.spans = spans
        self.network.spans = spans
        for node in [*self.workers, self.storage_node]:
            node.containers.spans = spans

    def install_telemetry(self, telemetry) -> None:
        """Attach a metrics registry to every producer in the substrate.

        Mirrors :meth:`install_spans`: the network (per-node transfer
        counters) and each node's container pool (lifecycle counters)
        emit into ``telemetry``; engines built on this cluster pick it
        up as their default registry too.  Must be installed before
        systems are constructed, same as span tracers.
        """
        self.telemetry = telemetry
        self.network.telemetry = telemetry
        for node in [*self.workers, self.storage_node]:
            node.containers.telemetry = telemetry

    def node(self, name: str) -> Node:
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def worker_names(self) -> list[str]:
        return [n.name for n in self.workers]

    def set_storage_bandwidth(self, bandwidth: float) -> None:
        """Throttle the storage node's NIC (wondershaper equivalent)."""
        self.storage_node.nic.set_bandwidth(bandwidth)

    @property
    def total_data_moved(self) -> float:
        """Bytes that crossed any NIC (excludes node-local copies).

        Read from the network's running counter rather than the capped
        ``records`` ledger, so long runs stay exact."""
        return self.network.nonlocal_bytes

"""Tests for reclaimed container limits and the MicroVM sandbox mode."""

import pytest

from repro.core import (
    EngineConfig,
    FaaSFlowSystem,
    GraphScheduler,
    Placement,
    ReclamationConfig,
)
from repro.clients import run_closed_loop
from repro.dag import WorkflowDAG
from repro.sim import (
    Cluster,
    ClusterConfig,
    ContainerSpec,
    Environment,
    SimulationError,
)

MB = 1024.0 * 1024.0


def lean_dag(name="lean", memory=64 * MB):
    dag = WorkflowDAG(name)
    dag.add_function("f", service_time=0.05, memory=memory, output_size=0)
    return dag


class TestContainerLimitsComputation:
    def test_limits_equal_s_plus_mu(self, cluster):
        scheduler = GraphScheduler(
            cluster,
            reclamation=ReclamationConfig(
                container_memory=256 * MB, mu=32 * MB
            ),
        )
        dag = lean_dag(memory=64 * MB)
        limits = scheduler.container_limits(dag)
        # 256 - (256 - 64 - 32) = 96 MB = S + mu.
        assert limits["f"] == pytest.approx(96 * MB)

    def test_no_surplus_means_no_entry(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = lean_dag(memory=240 * MB)
        assert scheduler.container_limits(dag) == {}

    def test_mapped_function_per_instance_limit(self, cluster):
        scheduler = GraphScheduler(cluster)
        dag = WorkflowDAG("m")
        dag.add_function("mapped", memory=64 * MB, map_factor=4)
        limits = scheduler.container_limits(dag)
        # O(v) is per-workflow (x4); per container the shrink is /4.
        assert limits["mapped"] == pytest.approx(96 * MB)


class TestDeployWithLimits:
    def test_containers_created_shrunk(self, env, cluster):
        system = FaaSFlowSystem(cluster, EngineConfig(ship_data=False))
        dag = lean_dag(memory=64 * MB)
        placement = Placement(workflow="lean", assignment={"f": "worker-0"})
        system.deploy(dag, placement, container_limits={"f": 96 * MB})
        run_closed_loop(system, "lean", 1)
        pool = cluster.node("worker-0").containers
        container = pool._idle["f"][0]
        assert container.memory_limit == pytest.approx(96 * MB)
        assert pool.memory.reserved_by_tag("container") == pytest.approx(
            96 * MB
        )

    def test_pool_plus_shrunk_containers_fit_exactly(self, env):
        """Reclamation adds no pressure: pool + shrunken container ==
        one full container."""
        env2 = Environment()
        cluster = Cluster(
            env2,
            ClusterConfig(
                workers=1,
                container=ContainerSpec(cold_start_time=0.01),
            ),
        )
        worker = cluster.workers[0]
        worker.set_faastore_quota(160 * MB, workflow="lean")
        worker.containers.set_function_limit("f", 96 * MB)
        env2.run(until=worker.containers.acquire("f"))
        total = worker.memory.reserved
        assert total == pytest.approx(256 * MB)

    def test_admission_uses_shrunk_limit(self, env):
        env2 = Environment()
        from repro.sim import NodeConfig

        cluster = Cluster(
            env2,
            ClusterConfig(
                workers=1,
                worker=NodeConfig(cores=8, memory=256 * MB),
                container=ContainerSpec(cold_start_time=0.01),
            ),
        )
        pool = cluster.workers[0].containers
        pool.set_function_limit("small", 64 * MB)
        acquisitions = [pool.acquire("small") for _ in range(4)]
        env2.run(until=env2.now + 1.0)
        # Four 64 MB containers fit where only one 256 MB would.
        assert all(a.processed for a in acquisitions)

    def test_limit_validation(self, cluster):
        pool = cluster.node("worker-0").containers
        with pytest.raises(SimulationError):
            pool.set_function_limit("f", 0)
        with pytest.raises(SimulationError):
            pool.set_function_limit("f", 10_000 * MB)


class TestMicroVMSandbox:
    def make_microvm_pool(self):
        env = Environment()
        cluster = Cluster(
            env,
            ClusterConfig(
                workers=1,
                container=ContainerSpec(
                    cold_start_time=0.01, sandbox="microvm"
                ),
            ),
        )
        return env, cluster.workers[0].containers

    def test_function_limits_rejected(self):
        _, pool = self.make_microvm_pool()
        with pytest.raises(SimulationError):
            pool.set_function_limit("f", 96 * MB)

    def test_memory_limit_update_rejected(self):
        env, pool = self.make_microvm_pool()
        container = env.run(until=pool.acquire("f"))
        with pytest.raises(SimulationError):
            container.set_memory_limit(96 * MB)

    def test_execution_still_works(self):
        env, pool = self.make_microvm_pool()
        container = env.run(until=pool.acquire("f"))
        pool.release(container)
        again = env.run(until=pool.acquire("f"))
        assert again is container

    def test_invalid_sandbox_kind_rejected(self):
        with pytest.raises(SimulationError):
            ContainerSpec(sandbox="unikernel")
